"""``wabench`` command line: run benchmarks and regenerate paper artifacts.

Examples::

    wabench list
    wabench run gemm --runtime wasm3 --size small -O2
    wabench fig1 --size small
    wabench all --size small --out results/
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from ..bench import ALL_BENCHMARKS, get, names
from .experiments import EXPERIMENTS
from .runner import ENGINES, Harness


def _cmd_list(args) -> int:
    print(f"{'name':16s} {'suite':11s} {'domain':22s} description")
    for bench in ALL_BENCHMARKS:
        print(f"{bench.name:16s} {bench.suite:11s} {bench.domain:22s} "
              f"{bench.description}")
    return 0


def _cmd_run(args) -> int:
    harness = Harness(size=args.size, opt_level=args.opt,
                      benchmarks=[args.benchmark])
    engines = [args.runtime] if args.runtime else list(ENGINES)
    for engine in engines:
        start = time.time()
        result = harness.run(args.benchmark, engine, aot=args.aot)
        wall = time.time() - start
        print(f"--- {engine} ({wall:.2f}s wall)")
        sys.stdout.write(result.stdout_text())
        print(f"    modeled: {result.seconds * 1e3:.3f} ms, "
              f"{result.counters['instructions']:,} instructions, "
              f"IPC {result.counters['ipc']:.2f}, "
              f"MRSS {result.mrss_bytes / 1e6:.2f} MB, "
              f"bpm {result.counters['branch_miss_ratio']:.2%}, "
              f"cache-miss {result.counters['cache_miss_ratio']:.2%}")
    return 0


def _run_experiments(ids: List[str], args) -> int:
    bench_subset: Optional[List[str]] = None
    if args.benchmarks:
        bench_subset = [b.strip() for b in args.benchmarks.split(",")]
    harness = Harness(size=args.size, opt_level=args.opt,
                      benchmarks=bench_subset, verbose=args.verbose)
    outputs = []
    for experiment_id in ids:
        fn = EXPERIMENTS[experiment_id]
        start = time.time()
        table = fn(harness)
        text = table.render()
        outputs.append((experiment_id, text))
        print(text)
        print(f"  [{experiment_id} regenerated in {time.time() - start:.1f}s "
              f"wall]\n")
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        for experiment_id, text in outputs:
            path = os.path.join(args.out, f"{experiment_id}.txt")
            with open(path, "w") as f:
                f.write(text + "\n")
        print(f"wrote {len(outputs)} artifact(s) to {args.out}/")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="wabench",
        description="WABench-repro: regenerate the paper's experiments")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the 50 benchmarks")

    run_p = sub.add_parser("run", help="run one benchmark")
    run_p.add_argument("benchmark", choices=names())
    run_p.add_argument("--runtime", default=None,
                       help="native|wasmtime|wavm|wasmer|wasm3|wamr|"
                            "wasmer-<backend> (default: all)")
    run_p.add_argument("--aot", action="store_true")

    for experiment_id in EXPERIMENTS:
        sub.add_parser(experiment_id,
                       help=f"regenerate {experiment_id}")
    sub.add_parser("all", help="regenerate every figure and table")

    for name, p in sub.choices.items():
        if name == "list":
            continue
        p.add_argument("--size", default="small",
                       choices=("test", "small", "ref"))
        p.add_argument("-O", "--opt", type=int, default=2)
        p.add_argument("--benchmarks", default=None,
                       help="comma-separated subset of benchmark names")
        p.add_argument("--out", default=None,
                       help="directory to write artifact text files")
        p.add_argument("--verbose", action="store_true")

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "all":
        return _run_experiments(list(EXPERIMENTS), args)
    return _run_experiments([args.command], args)


if __name__ == "__main__":
    sys.exit(main())
