"""``wabench`` command line: run benchmarks and regenerate paper artifacts.

Examples::

    wabench list
    wabench run gemm --runtime wasm3 --size small -O2
    wabench run gemm --trace gemm.jsonl
    wabench trace gemm --size test
    wabench fig1 --size small
    wabench all --size small --out results/ --jobs 4

Artifacts (compiled Wasm, native binaries, AOT images, run results) are
cached in a persistent content-addressed store (``--cache-dir``, default
``$WABENCH_CACHE_DIR`` or ``~/.cache/wabench``); a warm rerun performs
zero compiles.  ``--no-cache`` disables the store, ``--jobs N`` fans the
measurement cells out over N worker processes.

``wabench run --trace out.jsonl`` exports the runs' model-time span
trees as a JSONL trace (schema in TRACING.md); ``wabench trace <bench>``
prints the per-phase/per-engine breakdown as a table.  Trace files are
byte-identical across cold, warm-cache, and ``--jobs N`` invocations.

``wabench fuzz`` runs the differential-fuzzing subsystem: seeded
generated programs executed on every engine at multiple -O levels, with
divergences optionally minimized to corpus reproducers.  ``--perf``
additionally gates every cell's cross-engine slowdown ratio against the
committed ``PERF_baseline.json`` (the WarpDiff-style oracle)::

    wabench fuzz --seed 42 --budget 50 --jobs 4
    wabench fuzz --seed 42 --budget 50 --minimize --corpus-dir corpus
    wabench fuzz --seed 42 --budget 50 --perf

``wabench serve`` sweeps the modeled edge/serverless serving grid
(:mod:`repro.serve`): service workloads x engines x execution models
(spawn-per-request, warm reuse, instance pool) x concurrency levels,
reporting cold-start latency, p50/p90/p99, sustained RPS, scaling
efficiency, and modeled memory.  The JSON report is deterministic and
CI-diffed against ``SERVE_golden.json``::

    wabench serve --seed 0
    wabench serve --modes pool --pool-size 2 --json serve.json

``wabench audit`` statically audits every suite module (interprocedural
call graph, static cost model cross-checked against one instrumented
run, lint diagnostics WA001..WA008) and gates the findings against the
committed ``AUDIT_baseline.json``::

    wabench audit
    wabench audit --update-baseline
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .. import speed
from ..bench import ALL_BENCHMARKS, io_names, names, service_names
from ..errors import HarnessError
from ..hw import MachineConfig
from ..obs import Stopwatch, Tracer, write_trace
from ..registry import SERVE_MODES, WASMER_BACKEND_ENGINES, is_engine_name
from .cache import default_cache_dir
from .experiments import EXPERIMENTS
from .report import phase_table, render_cache_stats, wasi_table
from .runner import ENGINES, Harness


def _cmd_list(args) -> int:
    print(f"{'name':16s} {'suite':11s} {'domain':22s} description")
    for bench in ALL_BENCHMARKS:
        print(f"{bench.name:16s} {bench.suite:11s} {bench.domain:22s} "
              f"{bench.description}")
    return 0


def _make_harness(args, benchmarks: Optional[List[str]] = None,
                  tracer: Optional[Tracer] = None) -> Harness:
    cache_dir = None if args.no_cache else \
        (args.cache_dir or default_cache_dir())
    return Harness(size=args.size, opt_level=args.opt,
                   benchmarks=benchmarks, verbose=args.verbose,
                   cache_dir=cache_dir, tracer=tracer)


def _resolve_out(args, filename: str) -> str:
    """Resolve an output file against the shared ``--out`` plumbing: a
    bare or relative filename lands inside ``--out`` when it is given
    (created on demand); absolute paths are honored as-is."""
    out_dir = getattr(args, "out", None)
    if out_dir and not os.path.isabs(filename):
        os.makedirs(out_dir, exist_ok=True)
        return os.path.join(out_dir, filename)
    parent = os.path.dirname(filename)
    if parent:
        os.makedirs(parent, exist_ok=True)
    return filename


def _export_trace(args, tracer: Tracer) -> None:
    path = _resolve_out(args, args.trace)
    count = write_trace(path, tracer.runs,
                        config={"size": args.size, "opt": args.opt})
    print(f"wrote {path} ({count} trace lines, "
          f"{len(tracer.runs)} run(s))")


def _reject_benchmarks_flag(args, command: str) -> int:
    print(f"wabench: {command!r} takes a single positional benchmark; "
          "--benchmarks only applies to experiment commands "
          "(fig1..fig14, table4, table5, metrics, all)",
          file=sys.stderr)
    return 2


def _validate_args(args) -> None:
    """Reject mutually-inconsistent or out-of-range flags with a
    one-line :class:`HarnessError` (exit 1), never a traceback."""
    if getattr(args, "jobs", 1) < 1:
        raise HarnessError(f"--jobs must be >= 1 (got {args.jobs})")
    if getattr(args, "opt", 2) not in (0, 1, 2, 3):
        raise HarnessError(f"-O must be 0..3 (got {args.opt})")
    runtime = getattr(args, "runtime", None)
    if runtime is not None:
        if not is_engine_name(runtime):
            raise HarnessError(
                f"unknown runtime {runtime!r}; choose from "
                f"{', '.join(ENGINES + WASMER_BACKEND_ENGINES)}")
        if runtime == "native" and getattr(args, "aot", False):
            raise HarnessError(
                "AOT does not apply to native execution "
                "(drop --aot or pick a Wasm runtime)")
    speed_tier = getattr(args, "speed_tier", None)
    if speed_tier is not None and speed_tier not in speed.TIERS:
        raise HarnessError(
            f"--speed-tier must be one of "
            f"{', '.join(str(t) for t in speed.TIERS)} "
            f"(got {speed_tier})")


def _cmd_run(args) -> int:
    if args.benchmarks:
        return _reject_benchmarks_flag(args, "run")
    tracer = Tracer() if args.trace else None
    harness = _make_harness(args, benchmarks=[args.benchmark],
                            tracer=tracer)
    engines = [args.runtime] if args.runtime else list(ENGINES)
    if args.jobs > 1:
        cells = [(args.benchmark, engine, args.opt, args.aot)
                 for engine in engines
                 if not (engine == "native" and args.aot)]
        harness.prewarm(cells, jobs=args.jobs)
    lines = []
    for engine in engines:
        watch = Stopwatch()
        result = harness.run(args.benchmark, engine, aot=args.aot)
        wall = watch.seconds
        lines.append(f"--- {engine} ({wall:.2f}s wall)")
        lines.append(result.stdout_text().rstrip("\n"))
        lines.append(
            f"    modeled: {result.seconds * 1e3:.3f} ms, "
            f"{result.counters['instructions']:,} instructions, "
            f"IPC {result.counters['ipc']:.2f}, "
            f"MRSS {result.mrss_bytes / 1e6:.2f} MB, "
            f"bpm {result.counters['branch_miss_ratio']:.2%}, "
            f"cache-miss {result.counters['cache_miss_ratio']:.2%}")
    text = "\n".join(lines)
    print(text)
    print(render_cache_stats(harness.cache_stats))
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        path = os.path.join(args.out, f"run-{args.benchmark}.txt")
        with open(path, "w") as f:
            f.write(text + "\n")
        print(f"wrote {path}")
    if tracer is not None:
        _export_trace(args, tracer)
    return 0


def _cmd_trace(args) -> int:
    """Per-phase, per-engine modeled-time breakdown of one benchmark."""
    if args.benchmarks:
        return _reject_benchmarks_flag(args, "trace")
    tracer = Tracer()
    harness = _make_harness(args, benchmarks=[args.benchmark],
                            tracer=tracer)
    engines = [args.runtime] if args.runtime else list(ENGINES)
    cells = [(args.benchmark, engine, args.opt, args.aot)
             for engine in engines
             if not (engine == "native" and args.aot)]
    if args.jobs > 1:
        harness.prewarm(cells, jobs=args.jobs)
    for name, engine, opt, aot in cells:
        harness.run(name, engine, opt=opt, aot=aot)
    table = phase_table(args.benchmark, tracer.runs,
                        MachineConfig().cycles_to_seconds)
    text = table.render()
    if args.wasi:
        text += "\n\n" + wasi_table(args.benchmark, tracer.runs).render()
    print(text)
    print(render_cache_stats(harness.cache_stats))
    if args.out:
        path = _resolve_out(args, f"trace-{args.benchmark}.txt")
        with open(path, "w") as f:
            f.write(text + "\n")
        print(f"wrote {path}")
    if args.trace:
        _export_trace(args, tracer)
    return 0


def _split_csv(text: str) -> List[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def _validate_serve_args(args) -> dict:
    """Parse + validate the serve grid flags into run_serve kwargs."""
    if args.benchmarks:
        raise HarnessError("serve selects workloads with --workloads, "
                           "not --benchmarks")
    workloads = _split_csv(args.workloads)
    known = set(names()) | set(service_names()) | set(io_names())
    for workload in workloads:
        if workload not in known:
            raise HarnessError(
                f"unknown workload {workload!r}; services: "
                f"{', '.join(service_names())}; io: "
                f"{', '.join(io_names())}")
    engines = _split_csv(args.engines)
    for engine in engines:
        if not is_engine_name(engine):
            raise HarnessError(
                f"unknown engine {engine!r}; choose from "
                f"{', '.join(ENGINES + WASMER_BACKEND_ENGINES)}")
    modes = _split_csv(args.modes)
    for mode in modes:
        if mode not in SERVE_MODES:
            raise HarnessError(f"unknown serve mode {mode!r}; choose "
                               f"from {', '.join(SERVE_MODES)}")
    try:
        concurrency = [int(c) for c in _split_csv(args.concurrency)]
    except ValueError:
        raise HarnessError(
            f"--concurrency must be comma-separated integers "
            f"(got {args.concurrency!r})")
    if not workloads or not engines or not modes or not concurrency:
        raise HarnessError("serve needs at least one workload, engine, "
                           "mode, and concurrency level")
    if any(c < 1 for c in concurrency):
        raise HarnessError("--concurrency levels must be >= 1")
    if args.requests < 1:
        raise HarnessError(f"--requests must be >= 1 "
                           f"(got {args.requests})")
    if not 0.0 < args.utilization <= 1.0:
        raise HarnessError(f"--utilization must be in (0, 1] "
                           f"(got {args.utilization})")
    if args.pool_size is not None and args.pool_size < 1:
        raise HarnessError(f"--pool-size must be >= 1 "
                           f"(got {args.pool_size})")
    if args.pool_size is not None and "pool" not in modes:
        raise HarnessError("--pool-size only applies to the pool mode; "
                           "add pool to --modes or drop the flag")
    if args.idle_timeout_ms is not None and args.idle_timeout_ms < 0:
        raise HarnessError("--idle-timeout-ms must be >= 0")
    return dict(workloads=workloads, engines=engines, modes=modes,
                concurrency_levels=concurrency, seed=args.seed,
                requests=args.requests, utilization=args.utilization,
                pool_size=args.pool_size,
                idle_timeout_ms=args.idle_timeout_ms)


def _cmd_serve(args) -> int:
    """Modeled serving grid: ``wabench serve`` (see repro.serve)."""
    from ..serve import render_report, report_json, run_serve

    grid = _validate_serve_args(args)
    tracer = Tracer() if args.trace else None
    harness = _make_harness(args, benchmarks=grid["workloads"],
                            tracer=tracer)
    watch = Stopwatch()
    report = run_serve(harness, jobs=args.jobs, **grid)
    text = render_report(report)
    print(text, end="")
    print(render_cache_stats(harness.cache_stats,
                             wall_seconds=watch.seconds))
    if args.json:
        path = _resolve_out(args, args.json)
        with open(path, "w") as f:
            f.write(report_json(report))
        print(f"wrote {path}")
    if args.out and not args.json:
        path = _resolve_out(args, "serve.txt")
        with open(path, "w") as f:
            f.write(text)
        print(f"wrote {path}")
    if tracer is not None:
        _export_trace(args, tracer)
    return 0


def _cmd_fuzz(args) -> int:
    from ..fuzz import Corpus, run_campaign
    from ..fuzz.engines import DEFAULT_ENGINES
    from ..fuzz.perf import DEFAULT_BASELINE_PATH, PerfBaseline
    from .cache import default_cache_dir

    engines = tuple(e.strip() for e in args.engines.split(",")) \
        if args.engines else DEFAULT_ENGINES
    opt_levels = tuple(int(o) for o in args.opt_levels.split(","))
    cache_dir = None if args.no_cache else \
        (args.cache_dir or default_cache_dir())
    corpus = Corpus(args.corpus_dir or "corpus") \
        if (args.minimize or args.corpus_dir) else None
    perf_baseline = None
    if args.perf or args.perf_baseline:
        perf_baseline = PerfBaseline.from_file(
            args.perf_baseline or DEFAULT_BASELINE_PATH)

    progress = None
    if args.verbose:
        def progress(verdict):
            status = "ok" if verdict.ok else "DIVERGES"
            print(f"  [fuzz] program {verdict.index} "
                  f"seed={verdict.seed} {status}", flush=True)

    tracer = Tracer() if args.verbose else None
    watch = Stopwatch()
    report = run_campaign(
        base_seed=args.seed, budget=args.budget,
        size_budget=args.size_budget, engines=engines,
        opt_levels=opt_levels, minimize=args.minimize,
        corpus=corpus, cache_dir=cache_dir, jobs=args.jobs,
        progress=progress, tracer=tracer, perf_baseline=perf_baseline)
    text = report.render(verbose=args.verbose)
    print(text)
    if tracer is not None and tracer.metrics.snapshot():
        print(tracer.metrics.render())
    print(render_cache_stats(report.cache_stats,
                             wall_seconds=watch.seconds))
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        path = os.path.join(args.out, f"fuzz-seed{args.seed}.txt")
        with open(path, "w") as f:
            f.write(text + "\n")
        print(f"wrote {path}")
    return 0 if report.ok else 1


def _cmd_audit(args) -> int:
    """Static audit of the suite, gated against the committed baseline.

    The report body is byte-identical across runs and ``--jobs`` values
    (no wall-clock output), which is what lets CI diff it blindly.
    """
    from ..analysis.audit import compare_baseline, run_suite_audit

    bench_subset: Optional[List[str]] = None
    if args.benchmarks:
        bench_subset = [b.strip() for b in args.benchmarks.split(",")]
    cache_dir = None if args.no_cache else \
        (args.cache_dir or default_cache_dir())
    progress = None
    if args.verbose:
        def progress(record):
            print(f"  [audit] {record['name']}: "
                  f"{len(record['diagnostics'])} diagnostic(s), "
                  f"{len(record['deviations'])} mix deviation(s)",
                  flush=True)
    suite = run_suite_audit(args.size, args.opt, benchmarks=bench_subset,
                            cache_dir=cache_dir, jobs=args.jobs,
                            progress=progress)
    print(suite.render())
    if args.json:
        path = _resolve_out(args, args.json)
        with open(path, "w") as f:
            f.write(suite.to_json() + "\n")
        print(f"wrote {path}")
    if args.update_baseline:
        path = args.baseline or "AUDIT_baseline.json"
        with open(path, "w") as f:
            json.dump(suite.baseline_dict(), f, indent=1, sort_keys=True)
            f.write("\n")
        print(f"wrote {path}")
        return 0
    baseline_path = args.baseline
    if baseline_path is None and os.path.exists("AUDIT_baseline.json"):
        baseline_path = "AUDIT_baseline.json"
    if baseline_path is None:
        # No baseline to gate against; stack-bound violations (model
        # soundness bugs) still fail the run.
        bad = [r["name"] for r in suite.records if not r["stack_bound_ok"]]
        if bad:
            print("audit: static stack bound violated in: "
                  + ", ".join(bad), file=sys.stderr)
            return 1
        return 0
    with open(baseline_path) as f:
        baseline = json.load(f)
    regressions, notes = compare_baseline(suite, baseline)
    for note in notes:
        print(f"audit: note: {note}")
    if regressions:
        print(f"audit: {len(regressions)} regression(s) "
              f"vs {baseline_path}:")
        for line in regressions:
            print(f"  {line}")
        print("if these findings are intended, refresh the baseline:\n"
              f"  wabench audit --size {args.size} -O{args.opt} "
              "--update-baseline")
        return 1
    print(f"audit: clean vs {baseline_path} "
          f"({len(suite.records)} benchmark(s))")
    return 0


def _run_experiments(ids: List[str], args) -> int:
    bench_subset: Optional[List[str]] = None
    if args.benchmarks:
        bench_subset = [b.strip() for b in args.benchmarks.split(",")]
    harness = _make_harness(args, benchmarks=bench_subset)
    total_watch = Stopwatch()
    if args.jobs > 1:
        from .parallel import plan_cells
        cells = plan_cells(harness, ids)
        if cells:
            print(f"[jobs] prewarming {len(cells)} cells "
                  f"across {args.jobs} workers")
            harness.prewarm(cells, jobs=args.jobs)
    outputs = []
    for experiment_id in ids:
        fn = EXPERIMENTS[experiment_id]
        watch = Stopwatch()
        table = fn(harness)
        text = table.render()
        outputs.append((experiment_id, text))
        print(text)
        print(f"  [{experiment_id} regenerated in {watch.seconds:.1f}s "
              f"wall]\n")
    print(render_cache_stats(harness.cache_stats,
                             wall_seconds=total_watch.seconds))
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        for experiment_id, text in outputs:
            path = os.path.join(args.out, f"{experiment_id}.txt")
            with open(path, "w") as f:
                f.write(text + "\n")
        print(f"wrote {len(outputs)} artifact(s) to {args.out}/")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="wabench",
        description="WABench-repro: regenerate the paper's experiments")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the 50 benchmarks")

    run_p = sub.add_parser("run", help="run one benchmark")
    run_p.add_argument("benchmark",
                       choices=names() + service_names() + io_names())
    run_p.add_argument("--runtime", default=None,
                       help="native|wasmtime|wavm|wasmer|wasm3|wamr|"
                            "wasmer-<backend> (default: all)")
    run_p.add_argument("--aot", action="store_true")
    run_p.add_argument("--trace", default=None, metavar="PATH",
                       help="write a JSONL model-time trace of the runs "
                            "(schema wabench-trace/2, see TRACING.md)")

    trace_p = sub.add_parser(
        "trace", help="per-phase modeled-time breakdown of one benchmark")
    trace_p.add_argument("benchmark",
                         choices=names() + service_names() + io_names())
    trace_p.add_argument("--runtime", default=None,
                         help="native|wasmtime|wavm|wasmer|wasm3|wamr|"
                              "wasmer-<backend> (default: all)")
    trace_p.add_argument("--aot", action="store_true")
    trace_p.add_argument("--wasi", action="store_true",
                         help="append the per-syscall WASI breakdown "
                              "(calls, modeled instructions, bytes, "
                              "share of total)")
    trace_p.add_argument("--trace", default=None, metavar="PATH",
                         help="also write the JSONL trace file")

    serve_p = sub.add_parser(
        "serve", help="modeled edge/serverless serving grid: cold/warm/"
                      "pooled instances, latency percentiles, RPS")
    serve_p.add_argument("--seed", type=int, default=0,
                         help="arrival-process base seed (default: 0)")
    serve_p.add_argument("--workloads",
                         default="hello_svc,compute_svc,state_svc",
                         help="comma-separated service workloads "
                              "(default: hello_svc,compute_svc,"
                              "state_svc)")
    serve_p.add_argument("--engines", default="wasmtime,wasm3",
                         help="comma-separated engines "
                              "(default: wasmtime,wasm3)")
    serve_p.add_argument("--modes", default="spawn,warm,pool",
                         help="execution models to sweep "
                              "(default: spawn,warm,pool)")
    serve_p.add_argument("--concurrency", default="1,4,16",
                         help="comma-separated concurrency levels "
                              "(default: 1,4,16)")
    serve_p.add_argument("--requests", type=int, default=200,
                         metavar="N",
                         help="requests simulated per cell "
                              "(default: 200)")
    serve_p.add_argument("--utilization", type=float, default=0.8,
                         metavar="U",
                         help="offered load as a fraction of cell "
                              "capacity, in (0, 1] (default: 0.8)")
    serve_p.add_argument("--pool-size", type=int, default=None,
                         metavar="N",
                         help="pool-mode instances (default: "
                              "concurrency // 2, min 1)")
    serve_p.add_argument("--idle-timeout-ms", type=float, default=10.0,
                         metavar="MS",
                         help="pool-mode idle expiry before an instance "
                              "must cold-start again (default: 10.0)")
    serve_p.add_argument("--json", default=None, metavar="PATH",
                         help="write the canonical wabench-serve/2 "
                              "report (the CI-diffed artifact)")
    serve_p.add_argument("--trace", default=None, metavar="PATH",
                         help="write a JSONL model-time trace with one "
                              "span per simulated request")

    audit_p = sub.add_parser(
        "audit", help="static audit of the suite (call graph, cost "
                      "model, lints) gated against AUDIT_baseline.json")
    audit_p.add_argument("--baseline", default=None, metavar="PATH",
                         help="baseline JSON to gate against (default: "
                              "AUDIT_baseline.json when present)")
    audit_p.add_argument("--update-baseline", action="store_true",
                         help="rewrite the baseline from this run's "
                              "findings instead of gating")
    audit_p.add_argument("--json", default=None, metavar="PATH",
                         help="also write the full per-benchmark audit "
                              "report as JSON")

    for experiment_id in EXPERIMENTS:
        sub.add_parser(experiment_id,
                       help=f"regenerate {experiment_id}")
    sub.add_parser("all", help="regenerate every figure and table")

    for name, p in sub.choices.items():
        if name == "list":
            continue
        p.add_argument("--size", default="small",
                       choices=("test", "small", "ref"))
        p.add_argument("-O", "--opt", type=int, default=2)
        p.add_argument("--benchmarks", default=None,
                       help="comma-separated subset of benchmark names")
        p.add_argument("--out", default=None,
                       help="directory to write artifact text files")
        p.add_argument("--verbose", action="store_true")
        p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="fan measurement cells out over N worker "
                            "processes (default: 1, serial)")
        p.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="artifact cache directory (default: "
                            "$WABENCH_CACHE_DIR or ~/.cache/wabench)")
        p.add_argument("--no-cache", action="store_true",
                       help="do not read or write the on-disk "
                            "artifact cache")
        p.add_argument("--speed-tier", type=int, default=None,
                       metavar="T",
                       help="override the repro.speed tier: 0 reference, "
                            "1 fastloop, 2 closures (default: "
                            "$REPRO_SPEED or 2)")
    # The committed audit baseline is generated at the test size, so the
    # gate defaults to it (every other command defaults to small); same
    # for the serve golden (SERVE_golden.json).
    audit_p.set_defaults(size="test")
    serve_p.set_defaults(size="test")

    fuzz_p = sub.add_parser(
        "fuzz", help="differential fuzzing across engines and -O levels")
    fuzz_p.add_argument("--seed", type=int, default=42,
                        help="campaign base seed (default: 42)")
    fuzz_p.add_argument("--budget", type=int, default=50, metavar="N",
                        help="number of generated programs (default: 50)")
    fuzz_p.add_argument("--size-budget", type=int, default=24,
                        metavar="S",
                        help="statements per generated program "
                             "(default: 24)")
    fuzz_p.add_argument("--engines", default=None,
                        help="comma-separated engine list (default: "
                             "native,wamr,wasm3,wasmtime,wavm,wasmer,"
                             "wasmtime-aot)")
    fuzz_p.add_argument("--opt-levels", default="0,2",
                        help="comma-separated -O levels (default: 0,2)")
    fuzz_p.add_argument("--minimize", action="store_true",
                        help="delta-debug each divergence to a minimal "
                             "reproducer saved in the corpus")
    fuzz_p.add_argument("--perf", action="store_true",
                        help="enable the performance-differential oracle "
                             "against the committed PERF_baseline.json")
    fuzz_p.add_argument("--perf-baseline", default=None, metavar="PATH",
                        help="perf baseline file (implies --perf; "
                             "default: PERF_baseline.json)")
    fuzz_p.add_argument("--corpus-dir", default=None, metavar="DIR",
                        help="corpus directory (default: corpus/; only "
                             "written with --minimize or when given)")
    fuzz_p.add_argument("--verbose", action="store_true")
    fuzz_p.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="fan programs out over N worker processes")
    fuzz_p.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="artifact cache directory (default: "
                             "$WABENCH_CACHE_DIR or ~/.cache/wabench)")
    fuzz_p.add_argument("--no-cache", action="store_true",
                        help="do not read or write the on-disk "
                             "artifact cache")
    fuzz_p.add_argument("--out", default=None,
                        help="directory to write the campaign report")
    fuzz_p.add_argument("--speed-tier", type=int, default=None,
                        metavar="T",
                        help="override the repro.speed tier: 0 reference, "
                             "1 fastloop, 2 closures (default: "
                             "$REPRO_SPEED or 2)")

    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args)
        _validate_args(args)
        if getattr(args, "speed_tier", None) is not None:
            speed.set_tier(args.speed_tier)
            # Spawned worker processes re-read the environment; keep
            # them on the same tier as the parent.
            os.environ["REPRO_SPEED"] = str(args.speed_tier)
        if args.command == "fuzz":
            return _cmd_fuzz(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "audit":
            return _cmd_audit(args)
        if args.command == "all":
            return _run_experiments(list(EXPERIMENTS), args)
        return _run_experiments([args.command], args)
    except HarnessError as exc:
        print(f"wabench: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
