"""Set-associative cache hierarchy with LRU replacement.

The hierarchy mirrors the paper's machine: split L1 (instruction/data), a
unified L2, and a large L3.  Accesses are performed at cache-line
granularity; a miss at one level recurses into the next and pays that
level's miss penalty, and the total stall latency is returned so the CPU
model can account cycles.

Implementation notes (this is the hottest code in the repository):

* A set is a plain dict mapping tag -> last-use tick.  Membership tests are
  O(1); eviction scans the (at most ``ways``-long) dict for the minimum
  tick.  This is measurably faster in CPython than an ordered list.
* All public entry points take *line indices* (``address >> line_shift``)
  where possible so callers can pre-shift once.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Optional, Tuple

from .config import CacheConfig, MachineConfig
from .counters import CacheLevelStats, PerfCounters


class Cache:
    """One set-associative, LRU, write-allocate cache level."""

    __slots__ = ("config", "stats", "next_level", "num_sets", "ways",
                 "set_mask", "sets", "tick")

    def __init__(self, config: CacheConfig, stats: CacheLevelStats,
                 next_level: Optional["Cache"] = None):
        self.config = config
        self.stats = stats
        self.next_level = next_level
        self.num_sets = config.num_sets
        self.ways = config.ways
        self.set_mask = self.num_sets - 1
        if self.num_sets & self.set_mask:
            raise ValueError(f"{config.name}: set count must be a power of two")
        # Sets materialize on first touch: a large L3 has thousands of
        # sets, most never referenced by a short run, and eagerly
        # allocating a dict per set costs more than the whole warm run.
        self.sets: defaultdict = defaultdict(dict)
        self.tick = 0

    def access_line(self, line: int) -> int:
        """Access one cache line; returns total stall cycles incurred."""
        self.tick += 1
        stats = self.stats
        stats.refs += 1
        index = line & self.set_mask
        cache_set = self.sets[index]
        if line in cache_set:
            cache_set[line] = self.tick
            return 0
        stats.misses += 1
        latency = self.config.miss_penalty
        if self.next_level is not None:
            latency += self.next_level.access_line(line)
        if len(cache_set) >= self.ways:
            victim = min(cache_set, key=cache_set.get)
            del cache_set[victim]
        cache_set[line] = self.tick
        return latency

    def contains_line(self, line: int) -> bool:
        cache_set = self.sets.get(line & self.set_mask)
        return cache_set is not None and line in cache_set

    def flush(self) -> None:
        self.sets.clear()

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self.sets.values())


class CacheHierarchy:
    """L1I + L1D over a unified L2 over L3, feeding a counter set."""

    def __init__(self, config: MachineConfig, counters: PerfCounters):
        self.line_shift = config.l1d.line_bytes.bit_length() - 1
        self.l3 = Cache(config.l3, counters.l3)
        self.l2 = Cache(config.l2, counters.l2, self.l3)
        self.l1i = Cache(config.l1i, counters.l1i, self.l2)
        self.l1d = Cache(config.l1d, counters.l1d, self.l2)

    # -- data side -----------------------------------------------------

    def data_access(self, address: int, size: int = 4) -> int:
        """Read/write ``size`` bytes at ``address``; returns stall cycles."""
        shift = self.line_shift
        first = address >> shift
        last = (address + size - 1) >> shift
        latency = self.l1d.access_line(first)
        if last != first:
            latency += self.l1d.access_line(last)
        return latency

    def data_line(self, line: int) -> int:
        """Access one pre-shifted data line."""
        return self.l1d.access_line(line)

    # -- instruction side -----------------------------------------------

    def ifetch_line(self, line: int) -> int:
        """Fetch one pre-shifted instruction line."""
        return self.l1i.access_line(line)

    def line_of(self, address: int) -> int:
        return address >> self.line_shift
