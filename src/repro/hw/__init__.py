"""Hardware performance model: the paper's Xeon + ``perf``, as software.

Provides cycle accounting, branch predictors, a set-associative cache
hierarchy, and resident-memory accounting.  Execution engines feed events
in; the harness reads the same six metrics the paper reports: time,
MRSS, instructions, IPC, branch misses (+ratio), cache misses (+ratio).
"""

from .branch import BranchPredictor
from .cache import Cache, CacheHierarchy
from .config import (GUEST_MEMORY_BASE, HOST_STACK_BASE, JIT_CODE_BASE,
                     NATIVE_CODE_BASE, RUNTIME_CODE_BASE, RUNTIME_DATA_BASE,
                     RUNTIME_HEAP_BASE, BranchConfig, CacheConfig,
                     MachineConfig)
from .counters import CacheLevelStats, PerfCounters
from .cpu import CPUModel
from .memory import PAGE_BYTES, MemoryAccountant

__all__ = [
    "BranchPredictor", "Cache", "CacheHierarchy",
    "GUEST_MEMORY_BASE", "HOST_STACK_BASE", "JIT_CODE_BASE",
    "NATIVE_CODE_BASE", "RUNTIME_CODE_BASE", "RUNTIME_DATA_BASE",
    "RUNTIME_HEAP_BASE", "BranchConfig", "CacheConfig", "MachineConfig",
    "CacheLevelStats", "PerfCounters", "CPUModel",
    "PAGE_BYTES", "MemoryAccountant",
]
