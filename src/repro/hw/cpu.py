"""The CPU model façade every execution engine reports to.

One :class:`CPUModel` lives for the duration of a measured run.  Execution
engines (the native machine executor, the interpreters, the JIT compilers)
feed it architectural events — retired instructions, branches, memory and
instruction-fetch accesses — and the model maintains the counters, cache
hierarchy, branch predictors, stall-cycle accounting, and resident-memory
accounting that the harness reads out at the end, exactly the role the
Xeon's PMU plays for ``perf`` in the paper.

Hot paths are allowed (encouraged) to reach into ``cpu.counters`` and the
cache/predictor objects directly instead of going through these wrapper
methods; the wrappers define the semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..obs.spans import NULL_BUILDER
from .branch import BranchPredictor
from .cache import CacheHierarchy
from .config import MachineConfig
from .counters import PerfCounters
from .memory import MemoryAccountant


class CPUModel:
    """Counters + caches + predictors + memory accounting for one run."""

    def __init__(self, config: Optional[MachineConfig] = None):
        self.config = config or MachineConfig()
        self.counters = PerfCounters(issue_width=self.config.issue_width)
        self.caches = CacheHierarchy(self.config, self.counters)
        self.branches = BranchPredictor(self.config.branch, self.counters)
        self.memory = MemoryAccountant()
        self.line_shift = self.caches.line_shift
        # Model-time span recorder; a RunPipeline swaps in a live
        # TraceBuilder, everything else keeps the no-op default.  The
        # engines and JIT backends emit child spans through this without
        # knowing whether anyone is listening.
        self.trace = NULL_BUILDER

    # -- retirement ----------------------------------------------------

    def retire(self, n: int = 1) -> None:
        """Retire ``n`` machine instructions."""
        self.counters.instructions += n

    # -- memory system ----------------------------------------------------

    def ifetch_line(self, line: int) -> None:
        self.counters.stall_cycles += self.caches.ifetch_line(line)

    def data_access(self, address: int, size: int = 4) -> None:
        self.counters.stall_cycles += self.caches.data_access(address, size)

    # -- control flow ------------------------------------------------------

    def cond_branch(self, pc: int, taken: bool) -> bool:
        return self.branches.cond_branch(pc, taken)

    def indirect_branch(self, pc: int, target: int) -> bool:
        return self.branches.indirect_branch(pc, target)

    def direct_branch(self) -> None:
        self.branches.direct_branch()

    def call(self, return_pc: int) -> None:
        self.branches.call(return_pc)

    def ret(self, target_pc: int) -> bool:
        return self.branches.ret(target_pc)

    # -- readout -------------------------------------------------------------

    @property
    def cycles(self) -> int:
        return self.counters.cycles

    @property
    def seconds(self) -> float:
        """Modeled wall-clock time of everything charged so far."""
        return self.config.cycles_to_seconds(self.counters.cycles)

    def report(self) -> Dict[str, float]:
        out = self.counters.snapshot()
        out["seconds"] = self.seconds
        out["mrss_bytes"] = self.memory.peak_bytes
        return out
