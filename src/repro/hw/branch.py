"""Branch prediction model.

Three structures, mirroring a modern front end:

* **gshare** for conditional branches: a table of 2-bit saturating counters
  indexed by PC xor a global taken/not-taken history register.
* a **two-component indirect target predictor** for computed jumps (the
  interpreter dispatch path, ``call_indirect``, jump tables): a
  BTB-capacity per-site table plus a target-history-indexed table, an
  ITTAGE-style hybrid.  Per-site prediction handles threaded code (each
  site has a fixed successor) *until the hot code footprint exceeds the
  table and aliasing sets in* — which is exactly how a big irregular
  bytecode like a chess engine defeats the BTB while small numeric kernels
  stay near-perfect (the paper's Table 5 gnuchess anomaly).  The
  history-indexed component captures repeating opcode *sequences* for
  single-site (switch / computed-goto) dispatch.
* a **return address stack** so call/return pairs predict near-perfectly.

The predictor *counts* branches and mispredicts into a
:class:`~repro.hw.counters.PerfCounters`; the caller adds the pipeline
penalty to stall cycles.
"""

from __future__ import annotations

from .config import BranchConfig
from .counters import PerfCounters


class BranchPredictor:
    """Conditional + indirect + return-address prediction."""

    __slots__ = ("config", "counters", "penalty", "_gshare", "_gshare_mask",
                 "_history", "_history_mask", "_btb", "_itc", "_meta",
                 "_itc_mask", "_target_history", "_ras", "_ras_depth")

    def __init__(self, config: BranchConfig, counters: PerfCounters):
        self.config = config
        self.counters = counters
        self.penalty = config.miss_penalty
        # gshare state: 2-bit counters initialized weakly not-taken
        self._gshare = bytearray(b"\x01" * (1 << config.gshare_bits))
        self._gshare_mask = (1 << config.gshare_bits) - 1
        self._history = 0
        self._history_mask = (1 << config.history_bits) - 1
        # indirect target predictor: per-site BTB + history-indexed table
        self._btb = {}
        self._itc = {}
        self._meta = {}
        self._itc_mask = (1 << config.indirect_bits) - 1
        self._target_history = 0
        # return address stack
        self._ras = []
        self._ras_depth = config.ras_depth

    # -- conditional branches ---------------------------------------------

    def cond_branch(self, pc: int, taken: bool) -> bool:
        """Predict+update a conditional branch; returns True on mispredict."""
        c = self.counters
        c.branches += 1
        index = (pc ^ self._history) & self._gshare_mask
        counter = self._gshare[index]
        predicted_taken = counter >= 2
        if taken:
            if counter < 3:
                self._gshare[index] = counter + 1
        else:
            if counter > 0:
                self._gshare[index] = counter - 1
        self._history = ((self._history << 1) | (1 if taken else 0)) \
            & self._history_mask
        if predicted_taken != taken:
            c.branch_misses += 1
            c.stall_cycles += self.penalty
            return True
        return False

    # -- unconditional direct branches/calls -------------------------------

    def direct_branch(self) -> None:
        """Direct jumps and calls: counted, never mispredicted."""
        self.counters.branches += 1

    # -- indirect branches ----------------------------------------------

    def indirect_branch(self, pc: int, target: int) -> bool:
        """Predict+update an indirect branch; returns True on mispredict."""
        c = self.counters
        c.branches += 1
        mask = self._itc_mask
        site_index = pc & mask
        # The history component is indexed by the recent-target path only,
        # so it can capture repeating *sequences* but cannot act as a
        # second site table for aliased sites.
        history = self._target_history
        hist_index = history & mask
        site_pred = self._btb.get(site_index)
        hist_pred = self._itc.get(hist_index)
        if site_pred == target and hist_pred == target:
            # Steady state (dominant in loops): both components already
            # predict this target, so the chooser update rules leave meta
            # untouched and both table writes are idempotent — only the
            # target history advances, and the branch hits.
            self._target_history = ((history << 4) ^ target) & mask
            return False
        # Chooser: a per-site 2-bit counter selects the component, as in
        # real hybrid indirect predictors.
        meta = self._meta.get(site_index, 1)
        predicted = hist_pred if meta >= 2 else site_pred
        site_ok = target == site_pred
        hist_ok = target == hist_pred
        if hist_ok and not site_ok and meta < 3:
            self._meta[site_index] = meta + 1
        elif site_ok and not hist_ok and meta > 0:
            self._meta[site_index] = meta - 1
        self._btb[site_index] = target
        self._itc[hist_index] = target
        self._target_history = ((history << 4) ^ target) & mask
        if predicted == target:
            return False
        c.branch_misses += 1
        c.stall_cycles += self.penalty
        return True

    # -- calls and returns -----------------------------------------------

    def call(self, return_pc: int) -> None:
        """A direct call: push the return address, always predicted."""
        self.counters.branches += 1
        if len(self._ras) >= self._ras_depth:
            del self._ras[0]
        self._ras.append(return_pc)

    def ret(self, target_pc: int) -> bool:
        """A return; mispredicts only on RAS underflow/overflow damage."""
        c = self.counters
        c.branches += 1
        predicted = self._ras.pop() if self._ras else None
        if predicted != target_pc:
            c.branch_misses += 1
            c.stall_cycles += self.penalty
            return True
        return False
