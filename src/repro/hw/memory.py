"""Resident-memory accounting: the model's equivalent of MRSS.

The paper measures *maximum resident set size* — the peak physical memory a
process touched.  This accountant tracks named regions the way a kernel
tracks mappings:

* **eager regions** (``alloc``): committed in full the moment they exist —
  runtime binaries, decoded module structures, JIT code buffers;
* **lazy regions** (``lazy_region`` + ``touch_page``): reserve address
  space but only count pages that were actually touched — wasm linear
  memory and demand-paged heaps.  This distinction is what reproduces the
  paper's whitedb anomaly (JIT runtimes showing *less* MRSS than native).

``peak_bytes`` tracks the high-water mark, because MRSS is a maximum: a
compiler's working memory counts even though it is freed before the
program runs.
"""

from __future__ import annotations

from typing import Dict, Set

PAGE_BYTES = 4096


class MemoryAccountant:
    """Tracks committed physical memory by named region."""

    def __init__(self):
        self._eager: Dict[str, int] = {}
        self._lazy: Dict[str, Set[int]] = {}
        self._peak = 0

    # -- eager regions ---------------------------------------------------

    def alloc(self, region: str, nbytes: int) -> None:
        """Commit ``nbytes`` more to an eager region."""
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        self._eager[region] = self._eager.get(region, 0) + nbytes
        self._update_peak()

    def free(self, region: str) -> None:
        """Release an entire eager region (e.g. compiler scratch space)."""
        self._eager.pop(region, None)

    def shrink(self, region: str, nbytes: int) -> None:
        """Release part of an eager region."""
        current = self._eager.get(region, 0)
        self._eager[region] = max(0, current - nbytes)

    # -- lazy (demand-paged) regions --------------------------------------

    def lazy_region(self, region: str) -> Set[int]:
        """Create/fetch a lazy region; returns its touched-page set.

        Callers on hot paths add page indices to the returned set directly
        (``pages.add(addr >> 12)``) to avoid a method call per access.
        """
        return self._lazy.setdefault(region, set())

    def touch_page(self, region: str, page_index: int) -> None:
        self._lazy.setdefault(region, set()).add(page_index)

    def touch_range(self, region: str, start: int, nbytes: int) -> None:
        """Touch every page overlapped by [start, start+nbytes)."""
        if nbytes <= 0:
            return
        pages = self._lazy.setdefault(region, set())
        pages.update(range(start >> 12, (start + nbytes - 1 >> 12) + 1))

    # -- readout ------------------------------------------------------------

    def _lazy_bytes(self) -> int:
        return sum(len(pages) for pages in self._lazy.values()) * PAGE_BYTES

    @property
    def resident_bytes(self) -> int:
        """Current committed physical memory."""
        return sum(self._eager.values()) + self._lazy_bytes()

    def _update_peak(self) -> None:
        current = self.resident_bytes
        if current > self._peak:
            self._peak = current

    def checkpoint(self) -> None:
        """Record the current residency into the peak (call after touching
        lazy pages in bulk, since hot paths bypass ``touch_page``)."""
        self._update_peak()

    @property
    def peak_bytes(self) -> int:
        """Maximum resident set size observed so far."""
        self._update_peak()
        return self._peak

    def breakdown(self) -> Dict[str, int]:
        """Bytes per region (current, not peak), for reports."""
        out = dict(self._eager)
        for region, pages in self._lazy.items():
            out[region] = out.get(region, 0) + len(pages) * PAGE_BYTES
        return out
