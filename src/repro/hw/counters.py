"""Performance counters: the model's equivalent of ``perf stat``.

A :class:`PerfCounters` instance accumulates the architectural events the
paper reports — retired instructions, cycles, branches and branch misses,
cache references and misses — plus per-cache-level detail.  Following the
convention of ``perf`` on Intel hardware, the headline ``cache_references``
and ``cache_misses`` counters refer to the *last-level* cache: references
are accesses that reached the LLC (i.e. L2 misses) and misses are LLC
misses that went to DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class CacheLevelStats:
    """Hit/miss accounting for one cache level."""

    refs: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.refs - self.misses

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.refs if self.refs else 0.0

    def merge(self, other: "CacheLevelStats") -> None:
        self.refs += other.refs
        self.misses += other.misses


@dataclass
class PerfCounters:
    """Architectural event counts for one measured execution."""

    instructions: int = 0
    stall_cycles: int = 0
    branches: int = 0
    branch_misses: int = 0
    l1i: CacheLevelStats = field(default_factory=CacheLevelStats)
    l1d: CacheLevelStats = field(default_factory=CacheLevelStats)
    l2: CacheLevelStats = field(default_factory=CacheLevelStats)
    l3: CacheLevelStats = field(default_factory=CacheLevelStats)
    issue_width: int = 4

    # ------------------------------------------------------------------
    # Derived quantities (the numbers the paper's figures plot).
    # ------------------------------------------------------------------

    @property
    def cycles(self) -> int:
        """Total cycles: steady-state issue plus accumulated stalls."""
        base = (self.instructions + self.issue_width - 1) // self.issue_width
        return max(1, base + self.stall_cycles)

    @property
    def ipc(self) -> float:
        """Instructions per cycle (paper Fig. 7)."""
        return self.instructions / self.cycles

    @property
    def branch_miss_ratio(self) -> float:
        """Mispredicted fraction of executed branches (paper Table 5)."""
        return self.branch_misses / self.branches if self.branches else 0.0

    @property
    def cache_references(self) -> int:
        """LLC references, i.e. accesses that missed L2 (perf convention)."""
        return self.l3.refs

    @property
    def cache_misses(self) -> int:
        """LLC misses (paper Fig. 9)."""
        return self.l3.misses

    @property
    def cache_miss_ratio(self) -> float:
        """LLC miss ratio (paper Fig. 10)."""
        return self.l3.miss_ratio

    # ------------------------------------------------------------------

    def merge(self, other: "PerfCounters") -> None:
        """Fold another counter set into this one (e.g. compile + run)."""
        self.instructions += other.instructions
        self.stall_cycles += other.stall_cycles
        self.branches += other.branches
        self.branch_misses += other.branch_misses
        self.l1i.merge(other.l1i)
        self.l1d.merge(other.l1d)
        self.l2.merge(other.l2)
        self.l3.merge(other.l3)

    def snapshot(self) -> Dict[str, float]:
        """Flat dict of every counter, for reports and result files."""
        return {
            "instructions": self.instructions,
            "cycles": self.cycles,
            "ipc": self.ipc,
            "branches": self.branches,
            "branch_misses": self.branch_misses,
            "branch_miss_ratio": self.branch_miss_ratio,
            "cache_references": self.cache_references,
            "cache_misses": self.cache_misses,
            "cache_miss_ratio": self.cache_miss_ratio,
            "l1i_refs": self.l1i.refs, "l1i_misses": self.l1i.misses,
            "l1d_refs": self.l1d.refs, "l1d_misses": self.l1d.misses,
            "l2_refs": self.l2.refs, "l2_misses": self.l2.misses,
            "l3_refs": self.l3.refs, "l3_misses": self.l3.misses,
        }

    def __str__(self) -> str:
        return (f"instructions={self.instructions} cycles={self.cycles} "
                f"ipc={self.ipc:.2f} branches={self.branches} "
                f"bpm={self.branch_misses} ({self.branch_miss_ratio:.2%}) "
                f"cache-refs={self.cache_references} "
                f"cache-misses={self.cache_misses} "
                f"({self.cache_miss_ratio:.2%})")
