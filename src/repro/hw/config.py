"""Machine configuration: the modeled hardware platform.

The defaults model the paper's experimental machine (Table 3): an Intel
Xeon E5-1620 v4 — 4-wide issue, 32K L1-I / 32K L1-D, 256K L2, 10M L3 —
running at 3.5 GHz.  All structure sizes and penalties are configurable so
the ablation benchmarks can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and miss latency of one cache level."""

    name: str
    size_bytes: int
    ways: int
    line_bytes: int = 64
    # Extra cycles paid when this level misses and the next one is consulted.
    miss_penalty: int = 10

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)


@dataclass(frozen=True)
class BranchConfig:
    """Branch predictor structure sizes."""

    gshare_bits: int = 14          # log2 entries of the 2-bit counter table
    history_bits: int = 12         # global history length
    indirect_bits: int = 10        # log2 entries of the indirect target cache
    indirect_history: int = 4      # number of past targets hashed into the index
    ras_depth: int = 16            # return address stack entries
    miss_penalty: int = 16         # pipeline refill cycles per mispredict


@dataclass(frozen=True)
class MachineConfig:
    """The full modeled machine (paper Table 3 by default)."""

    name: str = "xeon-e5-1620v4"
    frequency_hz: int = 3_500_000_000
    issue_width: int = 4
    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(
        "L1I", 32 * 1024, 8, miss_penalty=8))
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(
        "L1D", 32 * 1024, 8, miss_penalty=8))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        "L2", 256 * 1024, 8, miss_penalty=30))
    l3: CacheConfig = field(default_factory=lambda: CacheConfig(
        "L3", 10 * 1024 * 1024, 20, miss_penalty=170))
    branch: BranchConfig = field(default_factory=BranchConfig)

    def cycles_to_seconds(self, cycles: int) -> float:
        return cycles / self.frequency_hz


# Address space layout shared by all execution engines, so the cache model
# sees runtime code, JIT code, guest memory, and stacks in distinct regions
# exactly like distinct mappings in a real process.
NATIVE_CODE_BASE = 0x0100_0000
RUNTIME_CODE_BASE = 0x0200_0000   # interpreter handlers / runtime helpers
JIT_CODE_BASE = 0x0400_0000       # JIT/AOT code cache
RUNTIME_DATA_BASE = 0x0600_0000   # operand stacks, interpreter state
RUNTIME_HEAP_BASE = 0x0800_0000   # compiler IR buffers and runtime heaps
GUEST_MEMORY_BASE = 0x1000_0000   # wasm linear memory / native program data
HOST_STACK_BASE = 0x7F00_0000     # native & machine-code call stacks
