"""WABench-repro: a full-system reproduction of
"How Far We've Come - A Characterization Study of Standalone WebAssembly
Runtimes" (Wenwen Wang, IISWC 2022).

Public surface (see README.md for a tour):

* :func:`repro.compiler.compile_source` — MiniC -> WebAssembly ("wasicc")
* :func:`repro.native.nativecc` / :func:`repro.native.run_native` — the
  native baseline
* :func:`repro.runtimes.make_runtime` — the five runtime models
  (wasmtime, wavm, wasmer[-backend], wasm3, wamr)
* :mod:`repro.bench` — the 50-program WABench suite
* :class:`repro.harness.Harness` + :data:`repro.harness.EXPERIMENTS` —
  regenerate every figure/table
* :mod:`repro.hw` — the modeled CPU (caches, predictors, cycles, MRSS)
"""

__version__ = "1.1.0"

from . import errors

__all__ = ["errors", "__version__"]
