"""WABench-repro: a full-system reproduction of
"How Far We've Come - A Characterization Study of Standalone WebAssembly
Runtimes" (Wenwen Wang, IISWC 2022).

Public surface (see README.md for a tour):

* :func:`repro.compiler.compile_source` — MiniC -> WebAssembly ("wasicc")
* :func:`repro.native.nativecc` / :func:`repro.native.run_native` — the
  native baseline
* :func:`repro.runtimes.make_runtime` — the five runtime models
  (wasmtime, wavm, wasmer[-backend], wasm3, wamr)
* :mod:`repro.bench` — the 50-program WABench suite
* :class:`repro.harness.Harness` + :data:`repro.harness.EXPERIMENTS` —
  regenerate every figure/table
* :mod:`repro.hw` — the modeled CPU (caches, predictors, cycles, MRSS)
"""

__version__ = "1.2.0"

import os as _os
import sys as _sys

# Containers commonly set PYTHONDONTWRITEBYTECODE=1 to avoid littering
# site-packages — at the price of recompiling every module of this
# package on each process start (~100ms, dwarfing a warm benchmark
# run).  Re-enable the bytecode cache for the rest of this package's
# imports: ``__pycache__`` directories are gitignored, the standard
# library already ships compiled (so nothing is written there), and
# repeat invocations then skip the compile entirely.
# ``WABENCH_NO_PYC_CACHE`` opts out.
if _sys.dont_write_bytecode and "WABENCH_NO_PYC_CACHE" not in _os.environ:
    _sys.dont_write_bytecode = False

from . import errors

__all__ = ["errors", "__version__"]
