"""Canonical engine/runtime name registry.

One module owns the names; every layer imports from here.  Before this
existed, ``harness/runner.py``, ``fuzz/engines.py``, and
``runtimes/__init__.py`` each carried a private copy of the engine
lists, and they could (and briefly did) drift.

Pure data on purpose: importing this module must never pull in runtime
classes, the compiler, or the harness, so it is safe to import from any
layer (including ``runtimes/__init__`` itself, which asserts its class
table matches these names).
"""

from __future__ import annotations

from typing import Dict, Tuple

#: The three JIT-compilation-based runtime models (paper Table 1).
JIT_RUNTIME_NAMES: Tuple[str, ...] = ("wasmtime", "wavm", "wasmer")

#: The two interpretation-based runtime models.
INTERP_RUNTIME_NAMES: Tuple[str, ...] = ("wasm3", "wamr")

#: All five standalone runtimes, in the paper's presentation order.
ALL_RUNTIME_NAMES: Tuple[str, ...] = JIT_RUNTIME_NAMES + INTERP_RUNTIME_NAMES

#: The native baseline's engine name.
NATIVE_ENGINE = "native"

#: Every engine a harness cell can name: the native baseline + runtimes.
ENGINES: Tuple[str, ...] = (NATIVE_ENGINE,) + ALL_RUNTIME_NAMES

#: Wasmer backend-sweep engine names (paper Fig. 2 / Fig. 11 order:
#: SinglePass baseline, Cranelift, LLVM).
WASMER_BACKEND_ENGINES: Tuple[str, ...] = ("wasmer-singlepass", "wasmer",
                                           "wasmer-llvm")

#: Default fuzzing sweep: native baseline, both interpreter designs,
#: all three JIT tiers, and one AOT configuration.
DEFAULT_FUZZ_ENGINES: Tuple[str, ...] = ("native", "wamr", "wasm3",
                                         "wasmtime", "wavm", "wasmer",
                                         "wasmtime-aot")

#: Run-pipeline phase names, in execution order (see
#: ``repro.runtimes.base.RunPipeline``).
PIPELINE_PHASES: Tuple[str, ...] = ("spawn", "decode", "validate", "load",
                                    "instantiate", "execute", "teardown")

#: The serving tier's execution models (see ``repro.serve``): cold
#: instantiate per request, one warm instance per worker, or a bounded
#: instance pool with idle expiry.
SERVE_MODES: Tuple[str, ...] = ("spawn", "warm", "pool")

#: Pipeline phases whose cost a cold start pays before the first
#: request byte can be served (everything up to and including
#: instantiation; ``execute`` is the request itself).
COLD_START_PHASES: Tuple[str, ...] = ("spawn", "decode", "validate", "load",
                                      "instantiate")


#: Metrics the performance-differential fuzz oracle extracts from every
#: (engine, -O) cell — the modeled counters the paper's figures report
#: and the WarpDiff-style ratio test can therefore gate on.
PERF_ORACLE_METRICS: Tuple[str, ...] = ("instructions", "cycles",
                                        "cache_misses")

#: Benchmark-class boundaries for the perf oracle, as (name, exclusive
#: upper bound) over the *reference cell's* dynamic instruction count.
#: Slowdown ratios shift with workload size (fixed spawn/compile costs
#: amortize as programs grow — the paper's JIT-crossover story), so
#: expected ratios are kept per size class, not globally.
PERF_CLASS_BOUNDS: Tuple[Tuple[str, int], ...] = (
    ("xs", 4000), ("s", 8000), ("m", 16000), ("l", 32000))

#: Class of everything at or above the last bound.
PERF_CLASS_TOP = "xl"


#: Host-call dispatch cost per engine: ``(entry_instructions,
#: copy_instructions_per_8_bytes)``.  The entry cost models what the
#: engine burns getting from guest code into the WASI shim and back —
#: interpreters marshal arguments off the operand stack through a
#: generic shim, JITs go through a compiled trampoline, AOT images bind
#: imports at link time (direct calls), and the native baseline is a
#: plain syscall wrapper.  This is the eWAPA observation: syscall paths
#: are where standalone runtimes diverge most.
WASI_DISPATCH_COSTS: Dict[str, Tuple[int, int]] = {
    "native": (18, 1),
    "wasmtime": (38, 1),
    "wavm": (34, 1),
    "wasmer": (40, 1),
    "wasm3": (62, 2),
    "wamr": (78, 2),
}

#: Dispatch cost when the module was AOT-compiled: imports are resolved
#: at link time, so host calls skip the trampoline indirection.
WASI_AOT_DISPATCH_COSTS: Dict[str, Tuple[int, int]] = {
    "wasmtime": (22, 1),
    "wavm": (20, 1),
    "wasmer": (24, 1),
}

#: Engine-independent host-side work per WASI preview1 function (path
#: resolution, descriptor table checks, dirent/stat serialization...).
#: One entry per function the shim implements; the per-engine table is
#: materialized by :func:`syscall_cost_table`.
WASI_SYSCALL_KERNEL_COSTS: Dict[str, int] = {
    "args_get": 140,
    "args_sizes_get": 120,
    "environ_get": 140,
    "environ_sizes_get": 120,
    "clock_time_get": 110,
    "random_get": 130,
    "fd_write": 180,
    "fd_read": 180,
    "fd_pread": 190,
    "fd_pwrite": 190,
    "fd_close": 90,
    "fd_seek": 100,
    "fd_fdstat_get": 120,
    "fd_readdir": 210,
    "path_open": 260,
    "path_filestat_get": 200,
    "path_unlink_file": 220,
    "path_rename": 240,
    "proc_exit": 80,
}


def syscall_cost_table(engine: str,
                       aot: bool = False) -> Dict[str, Tuple[int, int]]:
    """Per-syscall ``(base_instructions, per_8_byte_copy)`` for one engine.

    ``base`` is the engine's dispatch entry cost plus the function's
    kernel cost; the copy term is charged per 8 bytes moved between the
    guest and the host.  Unknown engines (a hypothetical new runtime)
    fall back to the wasmtime JIT-trampoline pricing.
    """
    base = base_engine(engine)
    if base.startswith("wasmer-"):
        base = "wasmer"
    if aot and base in WASI_AOT_DISPATCH_COSTS:
        entry, per8 = WASI_AOT_DISPATCH_COSTS[base]
    else:
        entry, per8 = WASI_DISPATCH_COSTS.get(
            base, WASI_DISPATCH_COSTS["wasmtime"])
    return {fn: (entry + kernel, per8)
            for fn, kernel in WASI_SYSCALL_KERNEL_COSTS.items()}


def base_engine(name: str) -> str:
    """Strip an ``-aot`` suffix: the runtime that executes the cell."""
    return name[:-4] if name.endswith("-aot") else name


def is_engine_name(name: str) -> bool:
    """Whether ``name`` denotes a built-in engine: the native baseline,
    any runtime, a ``wasmer-<backend>`` variant, or an ``-aot`` form."""
    base = base_engine(name)
    return (base == NATIVE_ENGINE or base in ALL_RUNTIME_NAMES or
            base.startswith("wasmer-"))
