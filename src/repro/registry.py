"""Canonical engine/runtime name registry.

One module owns the names; every layer imports from here.  Before this
existed, ``harness/runner.py``, ``fuzz/engines.py``, and
``runtimes/__init__.py`` each carried a private copy of the engine
lists, and they could (and briefly did) drift.

Pure data on purpose: importing this module must never pull in runtime
classes, the compiler, or the harness, so it is safe to import from any
layer (including ``runtimes/__init__`` itself, which asserts its class
table matches these names).
"""

from __future__ import annotations

from typing import Tuple

#: The three JIT-compilation-based runtime models (paper Table 1).
JIT_RUNTIME_NAMES: Tuple[str, ...] = ("wasmtime", "wavm", "wasmer")

#: The two interpretation-based runtime models.
INTERP_RUNTIME_NAMES: Tuple[str, ...] = ("wasm3", "wamr")

#: All five standalone runtimes, in the paper's presentation order.
ALL_RUNTIME_NAMES: Tuple[str, ...] = JIT_RUNTIME_NAMES + INTERP_RUNTIME_NAMES

#: The native baseline's engine name.
NATIVE_ENGINE = "native"

#: Every engine a harness cell can name: the native baseline + runtimes.
ENGINES: Tuple[str, ...] = (NATIVE_ENGINE,) + ALL_RUNTIME_NAMES

#: Wasmer backend-sweep engine names (paper Fig. 2 / Fig. 11 order:
#: SinglePass baseline, Cranelift, LLVM).
WASMER_BACKEND_ENGINES: Tuple[str, ...] = ("wasmer-singlepass", "wasmer",
                                           "wasmer-llvm")

#: Default fuzzing sweep: native baseline, both interpreter designs,
#: all three JIT tiers, and one AOT configuration.
DEFAULT_FUZZ_ENGINES: Tuple[str, ...] = ("native", "wamr", "wasm3",
                                         "wasmtime", "wavm", "wasmer",
                                         "wasmtime-aot")

#: Run-pipeline phase names, in execution order (see
#: ``repro.runtimes.base.RunPipeline``).
PIPELINE_PHASES: Tuple[str, ...] = ("spawn", "decode", "validate", "load",
                                    "instantiate", "execute", "teardown")

#: The serving tier's execution models (see ``repro.serve``): cold
#: instantiate per request, one warm instance per worker, or a bounded
#: instance pool with idle expiry.
SERVE_MODES: Tuple[str, ...] = ("spawn", "warm", "pool")

#: Pipeline phases whose cost a cold start pays before the first
#: request byte can be served (everything up to and including
#: instantiation; ``execute`` is the request itself).
COLD_START_PHASES: Tuple[str, ...] = ("spawn", "decode", "validate", "load",
                                      "instantiate")


def base_engine(name: str) -> str:
    """Strip an ``-aot`` suffix: the runtime that executes the cell."""
    return name[:-4] if name.endswith("-aot") else name


def is_engine_name(name: str) -> bool:
    """Whether ``name`` denotes a built-in engine: the native baseline,
    any runtime, a ``wasmer-<backend>`` variant, or an ``-aot`` form."""
    base = base_engine(name)
    return (base == NATIVE_ENGINE or base in ALL_RUNTIME_NAMES or
            base.startswith("wasmer-"))
