"""The three JIT-compilation-based runtime models.

* **Wasmtime** — Cranelift tier, Bytecode Alliance's production runtime.
* **WAVM** — LLVM tier: the best steady-state code and by far the most
  compile work and compiler memory (the paper's slow-start, high-MRSS
  runtime).
* **Wasmer** — selectable backend (SinglePass / Cranelift / LLVM),
  defaulting to Cranelift, exactly as the paper configures it (Fig. 2
  sweeps the three backends).

All three support AOT: :meth:`compile_aot` performs the same translation
offline and returns an image that ``run(aot_image=...)`` loads instead of
compiling (Fig. 3 / Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import ReproError
from ..hw import CPUModel, MachineConfig
from ..isa.machine import Machine
from ..isa.program import MProgram
from ..wasi import WasiAPI
from ..wasm import Module, decode_module, validate_module
from .base import WasmRuntime
from .instance import Environment
from .jit import BACKENDS, BackendSpec, compile_backend

_AOT_LOAD_COST_PER_BYTE = 1   # relocation/mmap cost when loading an image


@dataclass
class AotImage:
    """A serialized ahead-of-time compilation result."""

    backend: str
    program: MProgram
    code_bytes: int
    wasm_ops: int


class JitRuntime(WasmRuntime):
    """Common machinery for the JIT-based runtime models."""

    mode = "jit"
    backend_name = "cranelift"

    def __init__(self, backend: Optional[str] = None):
        if backend is not None:
            if backend not in BACKENDS:
                raise ReproError(f"unknown backend {backend!r}")
            self.backend_name = backend

    @property
    def backend(self) -> BackendSpec:
        return BACKENDS[self.backend_name]

    # -- load: JIT-compile or map the AOT image ---------------------------

    def _load(self, module: Module, cpu: CPUModel,
              aot_image: Optional[AotImage]) -> MProgram:
        if aot_image is not None:
            if aot_image.backend != self.backend_name:
                raise ReproError(
                    f"AOT image was compiled with {aot_image.backend}, "
                    f"runtime uses {self.backend_name}")
            with cpu.trace.span("aot-load",
                                code_bytes=aot_image.code_bytes):
                cpu.counters.instructions += (
                    aot_image.code_bytes * _AOT_LOAD_COST_PER_BYTE)
                cpu.memory.alloc("aot-code", aot_image.code_bytes)
            return aot_image.program
        return compile_backend(module, self.backend, cpu)

    def _execute(self, program: MProgram, env: Environment, cpu: CPUModel,
                 wasi: WasiAPI) -> None:
        machine = Machine(program, cpu, memory=env.memory,
                          host=wasi.as_host())
        machine.globals = list(env.globals) if env.globals else \
            list(program.globals_init)
        machine.table = list(program.table)
        if program.start_function is not None:
            machine.call_function(program.start_function, ())
        machine.run_export("_start")

    # -- AOT ------------------------------------------------------------------

    def compile_aot(self, wasm_bytes: bytes,
                    config: Optional[MachineConfig] = None
                    ) -> Tuple[AotImage, float]:
        """Offline compilation; returns (image, modeled compile seconds)."""
        cpu = CPUModel(config)
        module = decode_module(wasm_bytes)
        validate_module(module)
        program = compile_backend(module, self.backend, cpu)
        image = AotImage(backend=self.backend_name, program=program,
                         code_bytes=program.code_bytes,
                         wasm_ops=module.body_size())
        return image, cpu.seconds


class WasmtimeRuntime(JitRuntime):
    """Model of Wasmtime: Cranelift JIT, Bytecode Alliance."""

    name = "wasmtime"
    backend_name = "cranelift"
    runtime_base_bytes = 2_700_000

    def __init__(self):
        super().__init__(None)


class WavmRuntime(JitRuntime):
    """Model of WAVM: LLVM-based JIT."""

    name = "wavm"
    backend_name = "llvm"
    runtime_base_bytes = 9_500_000

    def __init__(self):
        super().__init__(None)


class WasmerRuntime(JitRuntime):
    """Model of Wasmer: selectable JIT backends, Cranelift by default."""

    name = "wasmer"
    backend_name = "cranelift-lean"
    runtime_base_bytes = 3_300_000

    def __init__(self, backend: Optional[str] = None):
        if backend == "cranelift":
            backend = "cranelift-lean"
        super().__init__(backend)
        if backend is not None:
            self.name = "wasmer-llvm" if backend == "llvm" else \
                "wasmer-singlepass" if backend == "singlepass" else \
                "wasmer-cranelift"
