"""Module instantiation: imports, memory, table, globals, segments.

Shared by every runtime model — the part of a Wasm runtime that resolves
imports against the WASI host module, allocates linear memory and the
funcref table, evaluates constant initializer expressions, and copies the
active data/element segments, per the core spec's instantiation section.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..errors import LinkError, Trap
from ..hw import CPUModel
from ..isa.memory import LinearMemory
from ..wasi import WasiAPI
from ..wasm import Module
from ..wasm import opcodes as op
from ..wasm.module import KIND_FUNC, KIND_GLOBAL, KIND_MEMORY, KIND_TABLE

WASI_MODULE_NAME = "wasi_snapshot_preview1"


@dataclass
class Environment:
    """The runtime state of one instantiated module."""

    module: Module
    memory: LinearMemory
    globals: List
    table: List[int]
    host_funcs: Dict[int, tuple] = field(default_factory=dict)
    # host_funcs: joint func index -> ("host", callable, n_params, ftype)


def _eval_const(expr, globals_: List):
    ins = expr[0]
    o = ins[0]
    if o == op.I32_CONST:
        return ins[1] & 0xFFFFFFFF
    if o == op.I64_CONST:
        return ins[1] & 0xFFFFFFFFFFFFFFFF
    if o in (op.F32_CONST, op.F64_CONST):
        return ins[1]
    if o == op.GLOBAL_GET:
        return globals_[ins[1]]
    raise LinkError(f"unsupported constant expression {op.name_of(o)}")


def instantiate(module: Module, wasi: WasiAPI,
                cpu: Optional[CPUModel] = None,
                memory_region: str = "linear-memory") -> Environment:
    """Build the runtime environment for a validated module."""
    # -- imports ----------------------------------------------------------
    host_funcs: Dict[int, tuple] = {}
    func_import_index = 0
    for imp in module.imports:
        if imp.kind == KIND_FUNC:
            if imp.module != WASI_MODULE_NAME:
                raise LinkError(f"unknown import module {imp.module!r}")
            fn = getattr(wasi, imp.name, None)
            if fn is None or imp.name not in WasiAPI.NAMES:
                raise LinkError(f"unknown WASI import {imp.name!r}")
            ftype = module.types[imp.desc]
            host_funcs[func_import_index] = ("host", fn, len(ftype.params),
                                             ftype)
            func_import_index += 1
        elif imp.kind in (KIND_MEMORY, KIND_TABLE, KIND_GLOBAL):
            raise LinkError("memory/table/global imports are not provided "
                            "by the WASI host")

    # -- memory -------------------------------------------------------------
    touched = cpu.memory.lazy_region(memory_region) if cpu else None
    if module.memories:
        lim = module.memories[0]
        memory = LinearMemory(lim.minimum, lim.maximum, touched)
    else:
        memory = LinearMemory(0, 0, touched)

    # -- globals ------------------------------------------------------------
    globals_: List = []
    for glob in module.globals:
        globals_.append(_eval_const(glob.init, globals_))

    # -- table ------------------------------------------------------------
    table: List[int] = []
    if module.tables:
        table = [-1] * module.tables[0].minimum
    for seg in module.elements:
        offset = _eval_const(seg.offset, globals_)
        end = offset + len(seg.func_indices)
        if end > len(table):
            raise Trap("out of bounds table access", "element segment")
        for i, func_index in enumerate(seg.func_indices):
            table[offset + i] = func_index

    # -- data segments ------------------------------------------------------
    for seg in module.data:
        offset = _eval_const(seg.offset, globals_)
        memory.write_bytes(offset, seg.data)

    return Environment(module=module, memory=memory, globals=globals_,
                       table=table, host_funcs=host_funcs)
