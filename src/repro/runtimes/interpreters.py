"""The two interpretation-based runtime models: Wasm3 and WAMR.

* **Wasm3** pre-translates function bodies into threaded code at load
  time (higher load cost, larger in-memory code) and then dispatches with
  per-site indirect branches (cheap, predictable) — the reason the paper
  measures it consistently faster than WAMR.
* **WAMR** (classic interpreter mode) loads fast and small but pays a
  single-site switch dispatch on every instruction.

Both share the engine in :mod:`repro.runtimes.interp.engine`; only the
profile constants differ, which is faithful to how the two projects
differ architecturally.
"""

from __future__ import annotations

from typing import List, Optional

from .. import speed
from ..errors import ReproError
from ..hw import CPUModel
from ..wasm import Module
from ..wasm.module import KIND_FUNC
from .base import WasmRuntime
from .instance import Environment
from .interp import (CLASSIC_PROFILE, THREADED_PROFILE, InterpProfile,
                     Interpreter, prepare_function)
from ..wasi import WasiAPI


class _LoadedInterp:
    def __init__(self, functions: List, code_bytes: int,
                 fast: Optional[dict] = None,
                 closures: Optional[dict] = None):
        self.functions = functions
        self.code_bytes = code_bytes
        self.fast = fast
        self.closures = closures


class InterpreterRuntime(WasmRuntime):
    """Common load/execute logic for both interpreter models."""

    mode = "interp"
    profile: InterpProfile = CLASSIC_PROFILE
    #: Optional dispatch observer, forwarded to
    #: :attr:`Interpreter.opcode_profile` (set per-instance by the
    #: static auditor's dynamic-mix measurement; never during normal
    #: runs — attaching it disables the repro.speed fast path).
    instr_profile = None

    def _load(self, module: Module, cpu: CPUModel,
              aot_image: Optional[object]) -> _LoadedInterp:
        if aot_image is not None:
            raise ReproError(f"{self.name} does not support AOT images")
        profile = self.profile
        # Prepared side tables are a pure function of the module and are
        # profile-independent, so the decoded-module cache shares them
        # across runs and across the wasm3/wamr pair.  The modeled
        # translate charge below is identical on hit and miss.
        entry = speed.entry_for(module)
        with cpu.trace.span("translate", ops=module.body_size()):
            if entry is not None and entry.prepared is not None:
                prepared = entry.prepared
                total_ops = entry.total_ops
            else:
                prepared = [None] * module.num_funcs
                total_ops = 0
                num_imported = module.num_imported_funcs
                for i, func in enumerate(module.functions):
                    pf = prepare_function(module, func, num_imported + i)
                    prepared[num_imported + i] = ("wasm", pf)
                    total_ops += len(func.body)
                if entry is not None:
                    entry.prepared = prepared
                    entry.total_ops = total_ops
            cpu.counters.instructions += \
                total_ops * profile.translate_cost_per_op
        cpu.memory.alloc("interp-code", total_ops * profile.code_bytes_per_op)
        fast = None
        closures = None
        if entry is not None:
            fast = entry.fast_code(profile, cpu.caches.line_shift)
            if speed.tier() >= 2:
                closures = speed.module_cache.closure_code(
                    entry, profile, cpu.caches.line_shift)
        return _LoadedInterp(prepared, total_ops * profile.code_bytes_per_op,
                             fast, closures)

    def _execute(self, loaded: _LoadedInterp, env: Environment,
                 cpu: CPUModel, wasi: WasiAPI) -> None:
        functions = list(loaded.functions)
        for index, entry in env.host_funcs.items():
            functions[index] = entry
        interp = Interpreter(self.profile, cpu, env.memory, env.globals,
                             env.table, functions)
        interp.fast_code = loaded.fast
        interp.closure_code = loaded.closures
        if self.instr_profile is not None:
            interp.opcode_profile = self.instr_profile
        interp.set_signatures(env.module)
        # Interpreter frames live on the runtime's own stack/heap.
        cpu.memory.alloc("interp-stack", 128 * 1024)
        if env.module.start is not None:
            interp.call_index(env.module.start, ())
        start = env.module.find_export("_start", KIND_FUNC)
        if start is None:
            raise ReproError("module has no _start export")
        interp.call_index(start.index, ())


class Wasm3Runtime(InterpreterRuntime):
    """Model of Wasm3: threaded-code interpreter, tiny footprint."""

    name = "wasm3"
    profile = THREADED_PROFILE
    runtime_base_bytes = 1_050_000


class WamrRuntime(InterpreterRuntime):
    """Model of WAMR (classic interpreter mode): lightweight, portable."""

    name = "wamr"
    profile = CLASSIC_PROFILE
    runtime_base_bytes = 1_350_000
