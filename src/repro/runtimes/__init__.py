"""The five standalone WebAssembly runtime models (paper Table 1).

| Runtime  | Model                          | Execution      |
|----------|--------------------------------|----------------|
| Wasmtime | :class:`WasmtimeRuntime`       | JIT, Cranelift |
| WAVM     | :class:`WavmRuntime`           | JIT, LLVM      |
| Wasmer   | :class:`WasmerRuntime`         | JIT, selectable|
| Wasm3    | :class:`Wasm3Runtime`          | threaded interp|
| WAMR     | :class:`WamrRuntime`           | classic interp |
"""

from typing import Dict, Type

from ..registry import ALL_RUNTIME_NAMES
from .base import RunPipeline, RunResult, WasmRuntime
from .instance import Environment, instantiate
from .interpreters import InterpreterRuntime, Wasm3Runtime, WamrRuntime
from .jits import (AotImage, JitRuntime, WasmerRuntime, WasmtimeRuntime,
                   WavmRuntime)

RUNTIME_CLASSES: Dict[str, Type[WasmRuntime]] = {
    "wasmtime": WasmtimeRuntime,
    "wavm": WavmRuntime,
    "wasmer": WasmerRuntime,
    "wasm3": Wasm3Runtime,
    "wamr": WamrRuntime,
}

# The class table must agree with the canonical name registry
# (repro.registry) that the harness and fuzzer import.
assert tuple(RUNTIME_CLASSES) == ALL_RUNTIME_NAMES, \
    "runtime class table out of sync with repro.registry"


def make_runtime(name: str, **kwargs) -> WasmRuntime:
    """Instantiate a runtime model by its paper name."""
    if name.startswith("wasmer-"):
        return WasmerRuntime(backend=name.split("-", 1)[1])
    cls = RUNTIME_CLASSES.get(name)
    if cls is None:
        raise KeyError(f"unknown runtime {name!r}; "
                       f"choose from {ALL_RUNTIME_NAMES}")
    return cls(**kwargs)


__all__ = [
    "RunPipeline", "RunResult", "WasmRuntime", "Environment", "instantiate",
    "InterpreterRuntime", "Wasm3Runtime", "WamrRuntime",
    "AotImage", "JitRuntime", "WasmerRuntime", "WasmtimeRuntime",
    "WavmRuntime", "RUNTIME_CLASSES", "ALL_RUNTIME_NAMES", "make_runtime",
]
