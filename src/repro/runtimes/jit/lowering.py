"""Wasm -> machine-IR translation (the core of every JIT backend).

Translates the structured stack machine into the flat register ISA by
abstract interpretation of the operand stack: every stack slot is mapped
to a virtual register at translation time, the standard technique used by
Cranelift, LLVM lifting, and single-pass baseline compilers alike.

Two quality modes:

* **virtual-register mode** (Cranelift/LLVM): values flow in registers;
  only pattern-forced moves are emitted.
* **shadow-stack mode** (SinglePass): every push and pop additionally
  touches an in-memory shadow of the operand stack (``SPILL``/``RELOAD``
  accounting ops), reproducing why baseline compilers run ~2x slower —
  they trade code quality for one-pass compile speed.

Software bounds checks are emitted as ``CHECK`` ops with a configurable
density (an optimizing backend hoists/merges some of them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ...errors import ReproError
from ...isa import ops as m
from ...isa import wasm_map
from ...isa.program import MFunction, MProgram
from ...wasm import Module
from ...wasm import opcodes as w
from ...wasm.module import KIND_FUNC, Function


@dataclass
class LoweringOptions:
    shadow_stack: bool = False
    check_density: float = 1.0   # fraction of memory ops with explicit CHECK
    # Consult repro.analysis.ranges and drop the CHECK for accesses it
    # proves in bounds (the optimizing-tier behaviour: real LLVM-grade
    # backends eliminate checks they can discharge statically).
    eliminate_checks: bool = False


class _Frame:
    __slots__ = ("opcode", "entry_depth", "arity", "result_vreg",
                 "end_patches", "loop_target", "unreachable_at_entry")

    def __init__(self, opcode: int, entry_depth: int, arity: int,
                 result_vreg: int, loop_target: int = -1,
                 unreachable_at_entry: bool = False):
        self.opcode = opcode
        self.entry_depth = entry_depth
        self.arity = arity
        self.result_vreg = result_vreg
        self.end_patches: List[int] = []
        self.loop_target = loop_target
        self.unreachable_at_entry = unreachable_at_entry


class FunctionLowering:
    """Translates one function body."""

    def __init__(self, module: Module, func: Function, func_index: int,
                 options: LoweringOptions,
                 inbounds: Optional[frozenset] = None):
        self.module = module
        self.func = func
        self.func_index = func_index
        self.options = options
        self.inbounds = inbounds if inbounds is not None else frozenset()
        ftype = module.types[func.type_index]
        self.params = list(ftype.params)
        self.results = list(ftype.results)
        self.local_types = self.params + func.local_types()
        self.num_locals = len(self.local_types)
        self.next_vreg = self.num_locals
        self.code: List[tuple] = []
        self.stack: List[int] = []
        self.frames: List[_Frame] = []
        self._check_accum = 0.0
        self.max_shadow_depth = 0

    # -- small helpers ---------------------------------------------------

    def temp(self) -> int:
        v = self.next_vreg
        self.next_vreg += 1
        return v

    def emit(self, *ins) -> int:
        self.code.append(tuple(ins))
        return len(self.code) - 1

    def push(self, vreg: int) -> None:
        self.stack.append(vreg)
        if self.options.shadow_stack:
            depth = len(self.stack)
            if depth > self.max_shadow_depth:
                self.max_shadow_depth = depth
            self.emit(m.SPILL, depth)

    def pop(self) -> int:
        if self.options.shadow_stack:
            self.emit(m.RELOAD, len(self.stack))
        return self.stack.pop()

    def _protect_local(self, index: int) -> None:
        """Before writing local ``index``, preserve stacked reads of it."""
        if index in self.stack:
            saved = self.temp()
            self.emit(m.MOV, saved, index)
            for i, v in enumerate(self.stack):
                if v == index:
                    self.stack[i] = saved

    def _maybe_check(self) -> None:
        self._check_accum += self.options.check_density
        if self._check_accum >= 1.0:
            self._check_accum -= 1.0
            self.emit(m.CHECK)

    def _zero(self) -> int:
        v = self.temp()
        self.emit(m.LI, v, 0)
        return v

    # -- control-flow plumbing -----------------------------------------------

    def _branch_frame(self, depth: int) -> _Frame:
        if depth >= len(self.frames):
            raise ReproError("branch depth out of range (validator bug)")
        return self.frames[-1 - depth]

    def _emit_branch_to(self, frame: _Frame) -> None:
        """MOV the result (if any) and jump to the frame's label."""
        if frame.opcode == w.LOOP:
            self.emit(m.JMP, frame.loop_target)
            return
        if frame.arity:
            top = self.stack[-1]
            if top != frame.result_vreg:
                self.emit(m.MOV, frame.result_vreg, top)
        if frame.opcode == 0:
            # function frame: return
            self.emit(m.RET, frame.result_vreg if frame.arity else -1)
            return
        frame.end_patches.append(self.emit(m.JMP, -1))

    def _patch(self, at: int, target: int) -> None:
        ins = self.code[at]
        if ins[0] == m.JMP:
            self.code[at] = (m.JMP, target)
        elif ins[0] in (m.BRZ, m.BRNZ):
            self.code[at] = (ins[0], ins[1], target)
        else:  # pragma: no cover
            raise ReproError("cannot patch non-branch")

    # -- the translation loop ---------------------------------------------

    def lower(self) -> MFunction:
        module = self.module
        body = self.func.body
        if self.options.check_density > 0:
            # Sandboxed prologue: stack-limit check (what Cranelift/LLVM
            # emit for Wasm frames; native frames have no such check).
            self.emit(m.CHECK)
        func_frame = _Frame(0, 0, len(self.results),
                            self.temp() if self.results else -1)
        self.frames.append(func_frame)
        unreachable = False

        for pc, ins in enumerate(body):
            o = ins[0]

            if unreachable:
                # Only track structure until the region closes.
                if o in (w.BLOCK, w.LOOP, w.IF):
                    self.frames.append(_Frame(o, len(self.stack), 0, -1,
                                              unreachable_at_entry=True))
                elif o == w.ELSE:
                    frame = self.frames[-1]
                    if not frame.unreachable_at_entry:
                        # The then-arm ended unreachable; the else arm is
                        # still live.
                        del self.stack[frame.entry_depth:]
                        unreachable = False
                        if frame.loop_target >= 0:
                            self._patch(frame.loop_target, len(self.code))
                            frame.loop_target = -1
                elif o == w.END:
                    frame = self.frames.pop()
                    if not frame.unreachable_at_entry:
                        del self.stack[frame.entry_depth:]
                        unreachable = False
                        self._finish_frame(frame)
                        if not self.frames:
                            return self._finalize(func_frame)
                continue

            if o == w.BLOCK:
                arity = 0 if ins[1] == 0x40 else 1
                self.frames.append(_Frame(o, len(self.stack), arity,
                                          self.temp() if arity else -1))
            elif o == w.LOOP:
                arity = 0 if ins[1] == 0x40 else 1
                self.frames.append(_Frame(o, len(self.stack), arity,
                                          self.temp() if arity else -1,
                                          loop_target=len(self.code)))
            elif o == w.IF:
                cond = self.pop()
                arity = 0 if ins[1] == 0x40 else 1
                frame = _Frame(o, len(self.stack), arity,
                               self.temp() if arity else -1)
                # loop_target reused to store the BRZ to patch
                frame.loop_target = self.emit(m.BRZ, cond, -1)
                self.frames.append(frame)
            elif o == w.ELSE:
                frame = self.frames[-1]
                if frame.arity:
                    top = self.stack[-1]
                    if top != frame.result_vreg:
                        self.emit(m.MOV, frame.result_vreg, top)
                frame.end_patches.append(self.emit(m.JMP, -1))
                self._patch(frame.loop_target, len(self.code))
                frame.loop_target = -1
                del self.stack[frame.entry_depth:]
            elif o == w.END:
                frame = self.frames.pop()
                if frame.arity:
                    top = self.stack[-1]
                    if top != frame.result_vreg:
                        self.emit(m.MOV, frame.result_vreg, top)
                del self.stack[frame.entry_depth:]
                self._finish_frame(frame)
                if not self.frames:
                    return self._finalize(func_frame)
            elif o == w.BR:
                self._emit_branch_to(self._branch_frame(ins[1]))
                unreachable = True
            elif o == w.BR_IF:
                cond = self.pop()
                frame = self._branch_frame(ins[1])
                if frame.opcode == w.LOOP:
                    self.emit(m.BRNZ, cond, frame.loop_target)
                elif frame.arity == 0 and frame.opcode != 0:
                    frame.end_patches.append(self.emit(m.BRNZ, cond, -1))
                else:
                    skip = self.emit(m.BRZ, cond, -1)
                    self._emit_branch_to(frame)
                    self._patch(skip, len(self.code))
            elif o == w.BR_TABLE:
                index = self.pop()
                labels, default_depth = ins[1], ins[2]
                # Lower to a jump table over per-label stubs.
                stub_jumps: List[Tuple[int, int]] = []
                table_at = self.emit(m.BR_TABLE, index, (), -1)
                stubs: List[int] = []
                for depth in list(labels) + [default_depth]:
                    stubs.append(len(self.code))
                    self._emit_branch_to(self._branch_frame(depth))
                self.code[table_at] = (m.BR_TABLE, index,
                                       tuple(stubs[:-1]), stubs[-1])
                unreachable = True
            elif o == w.RETURN:
                if func_frame.arity:
                    top = self.stack[-1]
                    if top != func_frame.result_vreg:
                        self.emit(m.MOV, func_frame.result_vreg, top)
                    self.emit(m.RET, func_frame.result_vreg)
                else:
                    self.emit(m.RET, -1)
                unreachable = True
            elif o == w.UNREACHABLE:
                self.emit(m.TRAP_OP, "unreachable")
                unreachable = True
            elif o == w.NOP:
                pass
            elif o == w.CALL:
                self._lower_call(ins[1])
            elif o == w.CALL_INDIRECT:
                index = self.pop()
                ftype = module.types[ins[1]]
                args = [self.pop() for _ in ftype.params][::-1]
                dst = self.temp() if ftype.results else -1
                self.emit(m.CALL_IND, dst, ins[1], index, tuple(args))
                if ftype.results:
                    self.push(dst)
            elif o == w.DROP:
                self.pop()
            elif o == w.SELECT:
                cond = self.pop()
                b = self.pop()
                a = self.pop()
                dst = self.temp()
                self.emit(m.SELECT, dst, cond, a, b)
                self.push(dst)
            elif o == w.LOCAL_GET:
                self.push(ins[1])
            elif o == w.LOCAL_SET:
                value = self.pop()
                self._protect_local(ins[1])
                self.emit(m.MOV, ins[1], value)
            elif o == w.LOCAL_TEE:
                value = self.stack[-1]
                self._protect_local(ins[1])
                self.emit(m.MOV, ins[1], value)
            elif o == w.GLOBAL_GET:
                dst = self.temp()
                self.emit(m.GGET, dst, ins[1])
                self.push(dst)
            elif o == w.GLOBAL_SET:
                self.emit(m.GSET, ins[1], self.pop())
            elif o in wasm_map.LOADS:
                addr = self.pop()
                dst = self.temp()
                if pc not in self.inbounds:
                    self._maybe_check()
                self.emit(wasm_map.LOADS[o], dst, addr, ins[2])
                self.push(dst)
            elif o in wasm_map.STORES:
                value = self.pop()
                addr = self.pop()
                if pc not in self.inbounds:
                    self._maybe_check()
                self.emit(wasm_map.STORES[o], addr, ins[2], value)
            elif o == w.I32_CONST:
                dst = self.temp()
                self.emit(m.LI, dst, ins[1] & 0xFFFFFFFF)
                self.push(dst)
            elif o == w.I64_CONST:
                dst = self.temp()
                self.emit(m.LI, dst, ins[1] & 0xFFFFFFFFFFFFFFFF)
                self.push(dst)
            elif o == w.F32_CONST or o == w.F64_CONST:
                dst = self.temp()
                self.emit(m.LI, dst, float(ins[1]))
                self.push(dst)
            elif o in wasm_map.BINARY:
                b = self.pop()
                a = self.pop()
                dst = self.temp()
                self.emit(wasm_map.BINARY[o], dst, a, b)
                self.push(dst)
            elif o in wasm_map.UNARY:
                a = self.pop()
                dst = self.temp()
                self.emit(wasm_map.UNARY[o], dst, a)
                self.push(dst)
            elif o == w.MEMORY_SIZE:
                dst = self.temp()
                self.emit(m.MEMSIZE, dst)
                self.push(dst)
            elif o == w.MEMORY_GROW:
                pages = self.pop()
                dst = self.temp()
                self.emit(m.MEMGROW, dst, pages)
                self.push(dst)
            else:
                raise ReproError(f"lowering: unhandled opcode {w.name_of(o)}")

        # Implicit end of function (body has no trailing END in our IR).
        if not unreachable:
            if func_frame.arity:
                top = self.stack[-1] if self.stack else self._zero()
                if top != func_frame.result_vreg:
                    self.emit(m.MOV, func_frame.result_vreg, top)
                self.emit(m.RET, func_frame.result_vreg)
            else:
                self.emit(m.RET, -1)
        return self._finalize(func_frame)

    def _finish_frame(self, frame: _Frame) -> None:
        if frame.opcode == w.IF and frame.loop_target >= 0:
            # if without else: false path lands here
            self._patch(frame.loop_target, len(self.code))
        for at in frame.end_patches:
            self._patch(at, len(self.code))
        if frame.arity:
            self.push(frame.result_vreg)

    def _lower_call(self, func_index: int) -> None:
        module = self.module
        ftype = module.func_type(func_index)
        args = [self.pop() for _ in ftype.params][::-1]
        dst = self.temp() if ftype.results else -1
        num_imported = module.num_imported_funcs
        if func_index < num_imported:
            self.emit(m.CALL_HOST, dst, func_index, tuple(args))
        else:
            self.emit(m.CALL, dst, func_index - num_imported, tuple(args))
        if ftype.results:
            self.push(dst)

    def _finalize(self, func_frame: _Frame) -> MFunction:
        # The body may end right after an END that closed the function
        # frame; ensure a terminating RET exists.
        if not self.code or self.code[-1][0] not in (m.RET, m.JMP,
                                                     m.TRAP_OP, m.BR_TABLE):
            if func_frame.arity:
                top = self.stack[-1] if self.stack else self._zero()
                if top != func_frame.result_vreg:
                    self.emit(m.MOV, func_frame.result_vreg, top)
                self.emit(m.RET, func_frame.result_vreg)
            else:
                self.emit(m.RET, -1)
        mf = MFunction(
            name=self.func.name or f"wf{self.func_index}",
            num_params=len(self.params),
            num_regs=self.next_vreg,
            code=self.code,
            sig_id=self.func.type_index,
            returns_value=bool(self.results),
            frame_slots=self.max_shadow_depth if self.options.shadow_stack
            else 0,
        )
        return mf


def lower_module(module: Module, options: LoweringOptions) -> MProgram:
    """Lower every defined function; assemble the whole program."""
    program = MProgram()
    num_imported = module.num_imported_funcs
    imported = module.imported(KIND_FUNC)
    program.host_imports = [imp.name for imp in imported]

    for i, func in enumerate(module.functions):
        inbounds = None
        if options.eliminate_checks:
            from ...analysis.ranges import provable_inbounds
            inbounds = provable_inbounds(module, func)
        mf = FunctionLowering(module, func, num_imported + i,
                              options, inbounds).lower()
        program.add_function(mf)

    # Environment: globals, table, memory, data, exports, start.
    from ..instance import _eval_const
    for glob in module.globals:
        program.globals_init.append(_eval_const(glob.init,
                                                program.globals_init))
    if module.tables:
        program.table = [-1] * module.tables[0].minimum
    for seg in module.elements:
        offset = _eval_const(seg.offset, program.globals_init)
        for k, func_index in enumerate(seg.func_indices):
            if func_index < num_imported:
                raise ReproError("imported functions in tables are not "
                                 "supported")
            program.table[offset + k] = func_index - num_imported
    if module.memories:
        program.memory_pages = module.memories[0].minimum
        program.memory_max_pages = module.memories[0].maximum
    for seg in module.data:
        offset = _eval_const(seg.offset, program.globals_init)
        program.data_segments.append((offset, seg.data))
    for export in module.exports:
        if export.kind == KIND_FUNC and export.index >= num_imported:
            program.exports[export.name] = export.index - num_imported
    if module.start is not None:
        if module.start < num_imported:
            raise ReproError("imported start function")
        program.start_function = module.start - num_imported
    return program
