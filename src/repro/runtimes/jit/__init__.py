"""JIT compilation machinery: lowering, regalloc, passes, backend tiers."""

from .backend import (BACKENDS, CRANELIFT, LLVM, SINGLEPASS, BackendSpec,
                      compile_backend)
from .lowering import FunctionLowering, LoweringOptions, lower_module
from .passes import run_optimizing_pipeline
from .regalloc import allocate_registers

__all__ = ["BACKENDS", "CRANELIFT", "LLVM", "SINGLEPASS", "BackendSpec",
           "compile_backend", "FunctionLowering", "LoweringOptions",
           "lower_module", "run_optimizing_pipeline", "allocate_registers"]
