"""Machine-IR optimization passes (the optimizing JIT tier's midend).

The LLVM-modeled backend (WAVM, Wasmer/LLVM) runs these over the lowered
code; the Cranelift-modeled tier runs only the cheap subset; SinglePass
runs none.  They transform real code — instruction-count reductions seen
in the figures come from actual rewrites, not discount factors.

Passes: block-local constant folding, copy propagation, common
subexpression elimination, global dead-code elimination, and redundant
bounds-check elimination.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ...errors import Trap
from ...isa import ops as m
from ...isa.program import MFunction
from .regalloc import _operand_regs

_TERMINATORS = m.TERMINATORS
_CALLS = (m.CALL, m.CALL_HOST, m.CALL_IND)


def _block_starts(code: List[tuple]) -> Set[int]:
    starts = {0}
    for pc, ins in enumerate(code):
        o = ins[0]
        if o == m.JMP:
            starts.add(ins[1])
        elif o in (m.BRZ, m.BRNZ):
            starts.add(ins[2])
            starts.add(pc + 1)
        elif o == m.BR_TABLE:
            starts.update(ins[2])
            starts.add(ins[3])
        elif o in _TERMINATORS:
            starts.add(pc + 1)
    return {s for s in starts if s < len(code)}


def _rebuild(func: MFunction, keep: List[bool]) -> int:
    """Drop unkept instructions, remapping branch targets; returns removed."""
    code = func.code
    n = len(code)
    removed = n - sum(keep)
    if removed == 0:
        return 0
    remap = [0] * (n + 1)
    new_code: List[tuple] = []
    for pc in range(n):
        remap[pc] = len(new_code)
        if keep[pc]:
            new_code.append(code[pc])
    remap[n] = len(new_code)
    for i, ins in enumerate(new_code):
        o = ins[0]
        if o == m.JMP:
            new_code[i] = (o, remap[ins[1]])
        elif o in (m.BRZ, m.BRNZ):
            new_code[i] = (o, ins[1], remap[ins[2]])
        elif o == m.BR_TABLE:
            new_code[i] = (o, ins[1], tuple(remap[t] for t in ins[2]),
                           remap[ins[3]])
    func.code = new_code
    return removed


def constant_fold(func: MFunction) -> int:
    """Fold ALU ops whose operands are block-locally known constants."""
    code = func.code
    starts = _block_starts(code)
    consts: Dict[int, object] = {}
    changed = 0
    for pc, ins in enumerate(code):
        if pc in starts:
            consts.clear()
        o = ins[0]
        if o == m.LI:
            consts[ins[1]] = ins[2]
            continue
        if o < m.NUM_BIN and ins[2] in consts and ins[3] in consts:
            try:
                value = m.BINF[o](consts[ins[2]], consts[ins[3]])
            except Trap:
                consts.pop(ins[1], None)
                continue
            code[pc] = (m.LI, ins[1], value)
            consts[ins[1]] = value
            changed += 1
            continue
        if m.NUM_BIN <= o < m.NUM_UN_END and ins[2] in consts:
            try:
                value = m.UNF[o - m.NUM_BIN](consts[ins[2]])
            except Trap:
                consts.pop(ins[1], None)
                continue
            code[pc] = (m.LI, ins[1], value)
            consts[ins[1]] = value
            changed += 1
            continue
        defs, _uses = _operand_regs(ins)
        for d in defs:
            consts.pop(d, None)
    return changed


def copy_propagate(func: MFunction) -> int:
    """Within blocks, replace uses of MOV destinations by their source."""
    code = func.code
    starts = _block_starts(code)
    alias: Dict[int, int] = {}
    changed = 0

    def resolve(v: int) -> int:
        seen = set()
        while v in alias and v not in seen:
            seen.add(v)
            v = alias[v]
        return v

    for pc, ins in enumerate(code):
        if pc in starts:
            alias.clear()
        o = ins[0]
        defs, uses = _operand_regs(ins)
        if uses:
            new_ins = _replace_uses(ins, {u: resolve(u) for u in uses})
            if new_ins != ins:
                code[pc] = new_ins
                ins = new_ins
                changed += 1
        for d in defs:
            alias.pop(d, None)
            # Any alias chain through d is now stale.
            stale = [k for k, v in alias.items() if v == d]
            for k in stale:
                del alias[k]
        if o == m.MOV:
            src = resolve(ins[2])
            if src != ins[1]:
                alias[ins[1]] = src
    return changed


def _replace_uses(ins: tuple, mapping: Dict[int, int]) -> tuple:
    o = ins[0]
    if o < m.NUM_BIN:
        return (o, ins[1], mapping.get(ins[2], ins[2]),
                mapping.get(ins[3], ins[3]))
    if o < m.NUM_UN_END:
        return (o, ins[1], mapping.get(ins[2], ins[2]))
    if o == m.MOV:
        return (o, ins[1], mapping.get(ins[2], ins[2]))
    if o == m.SELECT:
        return (o, ins[1], mapping.get(ins[2], ins[2]),
                mapping.get(ins[3], ins[3]), mapping.get(ins[4], ins[4]))
    if o in m.LOAD_OPS:
        return (o, ins[1], mapping.get(ins[2], ins[2]), ins[3])
    if o in m.STORE_OPS:
        return (o, mapping.get(ins[1], ins[1]), ins[2],
                mapping.get(ins[3], ins[3]))
    if o == m.GSET:
        return (o, ins[1], mapping.get(ins[2], ins[2]))
    if o == m.MEMGROW:
        return (o, ins[1], mapping.get(ins[2], ins[2]))
    if o in (m.BRZ, m.BRNZ):
        return (o, mapping.get(ins[1], ins[1]), ins[2])
    if o == m.BR_TABLE:
        return (o, mapping.get(ins[1], ins[1]), ins[2], ins[3])
    if o in (m.CALL, m.CALL_HOST):
        return (o, ins[1], ins[2], tuple(mapping.get(a, a) for a in ins[3]))
    if o == m.CALL_IND:
        return (o, ins[1], ins[2], mapping.get(ins[3], ins[3]),
                tuple(mapping.get(a, a) for a in ins[4]))
    if o == m.RET and ins[1] >= 0:
        return (o, mapping.get(ins[1], ins[1]))
    return ins


def common_subexpression(func: MFunction) -> int:
    """Block-local CSE over pure ALU/unary ops."""
    code = func.code
    starts = _block_starts(code)
    available: Dict[tuple, int] = {}
    by_reg: Dict[int, List[tuple]] = {}
    changed = 0
    for pc, ins in enumerate(code):
        if pc in starts:
            available.clear()
            by_reg.clear()
        o = ins[0]
        defs, uses = _operand_regs(ins)
        is_pure_value = o < m.NUM_UN_END and not m.EXTRA_STALL[o] >= 20
        # Redefinitions invalidate expressions that read (or live in) the
        # overwritten register — before the new expression is recorded.
        for d in defs:
            for key in by_reg.pop(d, []):
                available.pop(key, None)
        if is_pure_value:
            key = (o,) + tuple(ins[2:])
            prior = available.get(key)
            if prior is not None and prior != ins[1]:
                code[pc] = (m.MOV, ins[1], prior)
                changed += 1
            else:
                available[key] = ins[1]
                for u in uses:
                    by_reg.setdefault(u, []).append(key)
                by_reg.setdefault(ins[1], []).append(key)
    return changed


def dead_code(func: MFunction) -> int:
    """Remove pure instructions whose results are never read."""
    code = func.code
    removed_total = 0
    for _ in range(3):
        use_counts: Dict[int, int] = {}
        for ins in code:
            _defs, uses = _operand_regs(ins)
            for u in uses:
                use_counts[u] = use_counts.get(u, 0) + 1
        keep = [True] * len(code)
        changed = False
        for pc, ins in enumerate(code):
            o = ins[0]
            removable = (o == m.LI or o == m.MOV or o == m.SELECT or
                         o == m.GGET or o == m.MEMSIZE or
                         (o < m.NUM_UN_END and not _may_trap(o)))
            if not removable:
                continue
            dst = ins[1]
            if use_counts.get(dst, 0) == 0:
                keep[pc] = False
                changed = True
            elif o == m.MOV and ins[1] == ins[2]:
                keep[pc] = False
                changed = True
        if not changed:
            break
        removed_total += _rebuild(func, keep)
        code = func.code
    return removed_total


def _may_trap(o: int) -> bool:
    return o in (m.DIVS32, m.DIVU32, m.REMS32, m.REMU32,
                 m.DIVS64, m.DIVU64, m.REMS64, m.REMU64,
                 m.TRUNCF32S32, m.TRUNCF32U32, m.TRUNCF64S32,
                 m.TRUNCF64U32, m.TRUNCF32S64, m.TRUNCF32U64,
                 m.TRUNCF64S64, m.TRUNCF64U64)


def eliminate_redundant_checks(func: MFunction) -> int:
    """Keep at most one CHECK per block prefix between calls (hoisting)."""
    code = func.code
    starts = _block_starts(code)
    keep = [True] * len(code)
    seen_check = False
    changed = 0
    for pc, ins in enumerate(code):
        if pc in starts or ins[0] in _CALLS:
            seen_check = False
        if ins[0] == m.CHECK:
            if seen_check:
                keep[pc] = False
                changed += 1
            seen_check = True
    _rebuild(func, keep)
    return changed


def run_optimizing_pipeline(func: MFunction, heavy: bool) -> Dict[str, int]:
    """The per-tier pass pipeline; returns change counts (compile work)."""
    stats = {"fold": 0, "copyprop": 0, "cse": 0, "dce": 0, "checks": 0,
             "scanned": 0}
    rounds = 2 if heavy else 1
    for _ in range(rounds):
        stats["scanned"] += len(func.code)
        stats["fold"] += constant_fold(func)
        stats["copyprop"] += copy_propagate(func)
        if heavy:
            stats["cse"] += common_subexpression(func)
        stats["dce"] += dead_code(func)
    if heavy:
        stats["checks"] += eliminate_redundant_checks(func)
    return stats
