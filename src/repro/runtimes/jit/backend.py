"""JIT backend tiers: SinglePass, Cranelift-class, LLVM-class.

A backend is a recipe: lowering mode, register-file size, optimization
pipeline, and compile-work factors.  ``compile_backend`` runs the real
translation (lowering + passes + regalloc) and charges the CPU model for
the compiler's own instructions and memory traffic — the source of the
paper's compile-time effects (WAVM's slow starts, Table 4's AOT times,
Fig. 3's AOT speedups).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ...hw import CPUModel
from ...hw.config import RUNTIME_HEAP_BASE
from ...isa.program import MProgram
from ...wasm import Module
from .lowering import LoweringOptions, lower_module
from .passes import run_optimizing_pipeline
from .regalloc import allocate_registers


@dataclass(frozen=True)
class BackendSpec:
    """One compiler tier."""

    name: str
    lowering: LoweringOptions
    registers: int               # physical register file (0 = no regalloc)
    pipeline: str                # "none" | "light" | "heavy"
    compile_cost_per_op: int     # charged instructions per wasm op
    ir_bytes_per_op: int         # peak compiler working memory per wasm op
    compile_sweeps: int          # cache sweeps over the IR while compiling


SINGLEPASS = BackendSpec(
    name="singlepass",
    lowering=LoweringOptions(shadow_stack=True, check_density=1.0),
    registers=0, pipeline="none",
    compile_cost_per_op=10, ir_bytes_per_op=10, compile_sweeps=1)

CRANELIFT = BackendSpec(
    name="cranelift",
    lowering=LoweringOptions(shadow_stack=False, check_density=1.0),
    registers=16, pipeline="light",
    compile_cost_per_op=90, ir_bytes_per_op=28, compile_sweeps=2)

# Wasmer embeds Cranelift with a slightly leaner runtime integration than
# Wasmtime's (fewer safepoint/trampoline instructions), matching the small
# but consistent gap the paper measures between the two (1.59x vs 1.67x).
CRANELIFT_LEAN = BackendSpec(
    name="cranelift-lean",
    lowering=LoweringOptions(shadow_stack=False, check_density=0.9),
    registers=18, pipeline="light",
    compile_cost_per_op=70, ir_bytes_per_op=26, compile_sweeps=2)

# The LLVM tier's bounds-check advantage is *derived*, not tuned: its
# lowering consults repro.analysis.ranges and drops the CHECK for every
# access the interval analysis proves in bounds (constant addresses,
# counted loops over statically-sized arrays).  Accesses it cannot
# discharge — pointer chasing, data-dependent indices — keep their
# checks at full density, same as the Cranelift tiers.
LLVM = BackendSpec(
    name="llvm",
    lowering=LoweringOptions(shadow_stack=False, check_density=1.0,
                             eliminate_checks=True),
    registers=24, pipeline="heavy",
    compile_cost_per_op=800, ir_bytes_per_op=90, compile_sweeps=6)

BACKENDS: Dict[str, BackendSpec] = {
    "singlepass": SINGLEPASS, "cranelift": CRANELIFT,
    "cranelift-lean": CRANELIFT_LEAN, "llvm": LLVM}


def compile_backend(module: Module, spec: BackendSpec,
                    cpu: Optional[CPUModel] = None,
                    code_base: int = 0x0400_0000,
                    memory_region: str = "jit") -> MProgram:
    """Translate a module with one backend tier, charging the work."""
    total_ops = module.body_size()
    trace = cpu.trace if cpu is not None else None

    def _translate() -> MProgram:
        prog = lower_module(module, spec.lowering)
        for func in prog.functions:
            if spec.pipeline == "light":
                run_optimizing_pipeline(func, heavy=False)
            elif spec.pipeline == "heavy":
                run_optimizing_pipeline(func, heavy=True)
            if spec.registers:
                allocate_registers(func, spec.registers)
        prog.finalize(code_base)
        return prog

    if cpu is None:
        return _translate()

    counters = cpu.counters
    with trace.span("translate", backend=spec.name, ops=total_ops):
        program = _translate()
        compile_instrs = total_ops * spec.compile_cost_per_op
        counters.instructions += compile_instrs
        # Compilers are branch-heavy and data-dependent: ~1 branch per 6
        # instructions with a few percent mispredicted (IR-walk switches).
        compile_branches = compile_instrs // 6
        compile_misses = compile_branches // 30
        counters.branches += compile_branches
        counters.branch_misses += compile_misses
        counters.stall_cycles += compile_misses * \
            cpu.config.branch.miss_penalty
    with trace.span("ir-sweep", sweeps=spec.compile_sweeps):
        # The compiler walks its IR buffers; that traffic pollutes the
        # caches exactly like a real JIT burst.
        ir_bytes = total_ops * spec.ir_bytes_per_op
        cpu.memory.alloc(f"{memory_region}-compiler-peak", ir_bytes)
        l1d = cpu.caches.l1d
        shift = cpu.caches.line_shift
        base_line = RUNTIME_HEAP_BASE >> shift
        stall = 0
        for sweep in range(spec.compile_sweeps):
            for line in range(0, max(1, ir_bytes >> shift)):
                stall += l1d.access_line(base_line + line)
        counters.stall_cycles += stall
        cpu.memory.checkpoint()
        cpu.memory.free(f"{memory_region}-compiler-peak")
        cpu.memory.alloc(f"{memory_region}-code-cache", program.code_bytes)
    return program
