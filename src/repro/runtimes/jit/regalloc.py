"""Linear-scan register allocation (cost model).

The virtual machine executes with unlimited registers, so allocation does
not change *what* runs — it decides *what it costs*: virtual registers
that do not fit in the modeled physical register file get spill slots,
and every def/use of a spilled vreg inserts a ``SPILL``/``RELOAD``
accounting op (one retired instruction + one stack-memory access each),
exactly the cost spills have on real hardware.

Functions with high register pressure (big numeric kernels at -O0,
deeply-expression-heavy code) therefore run measurably slower on
backends with fewer effective registers, which is one of the quality
differences between the modeled JIT tiers.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ...isa import ops as m
from ...isa.program import MFunction

_BRANCH_OPS = (m.JMP, m.BRZ, m.BRNZ, m.BR_TABLE)


def _operand_regs(ins: tuple) -> Tuple[List[int], List[int]]:
    """(defs, uses) virtual registers of one instruction."""
    o = ins[0]
    if o < m.NUM_BIN:
        return [ins[1]], [ins[2], ins[3]]
    if o < m.NUM_UN_END:
        return [ins[1]], [ins[2]]
    if o == m.LI:
        return [ins[1]], []
    if o == m.MOV:
        return [ins[1]], [ins[2]]
    if o == m.SELECT:
        return [ins[1]], [ins[2], ins[3], ins[4]]
    if o in m.LOAD_OPS:
        return [ins[1]], [ins[2]]
    if o in m.STORE_OPS:
        return [], [ins[1], ins[3]]
    if o == m.GGET:
        return [ins[1]], []
    if o == m.GSET:
        return [], [ins[2]]
    if o == m.MEMSIZE:
        return [ins[1]], []
    if o == m.MEMGROW:
        return [ins[1]], [ins[2]]
    if o == m.BRZ or o == m.BRNZ:
        return [], [ins[1]]
    if o == m.BR_TABLE:
        return [], [ins[1]]
    if o == m.CALL or o == m.CALL_HOST:
        return ([ins[1]] if ins[1] >= 0 else []), list(ins[3])
    if o == m.CALL_IND:
        return ([ins[1]] if ins[1] >= 0 else []), [ins[3]] + list(ins[4])
    if o == m.RET:
        return [], ([ins[1]] if ins[1] >= 0 else [])
    return [], []  # JMP, TRAP, CHECK, SPILL, RELOAD


def allocate_registers(func: MFunction, num_physical: int) -> int:
    """Insert spill accounting; returns the number of spilled vregs."""
    code = func.code
    n = len(code)
    if func.num_regs <= num_physical or n == 0:
        return 0

    # Approximate live intervals over the linear code: [first, last]
    # occurrence.  Loop back-edges are covered because a vreg used after a
    # backward branch target has a linear interval spanning the loop.
    first: Dict[int, int] = {}
    last: Dict[int, int] = {}
    uses_count: Dict[int, int] = {}
    for pc, ins in enumerate(code):
        defs, uses = _operand_regs(ins)
        for v in defs + uses:
            if v not in first:
                first[v] = pc
            last[v] = pc
        for v in uses:
            uses_count[v] = uses_count.get(v, 0) + 1

    # Parameters are live from entry.
    for v in range(func.num_params):
        if v in first:
            first[v] = 0

    # Linear scan: choose spills where pressure exceeds the register file.
    intervals = sorted(first, key=lambda v: (first[v], last[v]))
    active: List[int] = []     # vregs currently assigned, sorted by end
    spilled: Set[int] = set()
    for v in intervals:
        start = first[v]
        active = [a for a in active if last[a] >= start]
        if len(active) < num_physical:
            active.append(v)
            active.sort(key=lambda a: last[a])
            continue
        # Spill the interval ending furthest away (Poletto's heuristic),
        # preferring to keep frequently-used vregs in registers.
        candidate = active[-1]
        if last[candidate] > last[v] and \
                uses_count.get(candidate, 0) <= uses_count.get(v, 0) + 2:
            spilled.add(candidate)
            active[-1] = v
            active.sort(key=lambda a: last[a])
        else:
            spilled.add(v)

    if not spilled:
        return 0

    # Assign spill slots and weave SPILL/RELOAD ops around defs/uses,
    # remapping branch targets to the rewritten indices.
    slot_of = {v: i for i, v in enumerate(sorted(spilled))}
    base_slot = func.frame_slots
    func.frame_slots = base_slot + len(spilled)

    new_code: List[tuple] = []
    remap: List[int] = [0] * (n + 1)
    for pc, ins in enumerate(code):
        remap[pc] = len(new_code)
        defs, uses = _operand_regs(ins)
        for v in uses:
            if v in spilled:
                new_code.append((m.RELOAD, base_slot + slot_of[v]))
        new_code.append(ins)
        for v in defs:
            if v in spilled:
                new_code.append((m.SPILL, base_slot + slot_of[v]))
    remap[n] = len(new_code)

    for i, ins in enumerate(new_code):
        o = ins[0]
        if o == m.JMP:
            new_code[i] = (o, remap[ins[1]])
        elif o in (m.BRZ, m.BRNZ):
            new_code[i] = (o, ins[1], remap[ins[2]])
        elif o == m.BR_TABLE:
            new_code[i] = (o, ins[1], tuple(remap[t] for t in ins[2]),
                           remap[ins[3]])
    func.code = new_code
    return len(spilled)
