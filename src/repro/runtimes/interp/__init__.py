"""Interpretation engines: classic switch-dispatch and threaded code."""

from .engine import (CLASSIC_PROFILE, THREADED_PROFILE, InterpProfile,
                     Interpreter, PreparedFunction, prepare_function)

__all__ = ["CLASSIC_PROFILE", "THREADED_PROFILE", "InterpProfile",
           "Interpreter", "PreparedFunction", "prepare_function"]
