"""The interpretation engine behind the Wasm3 and WAMR runtime models.

Two phases, mirroring real interpreters:

* **prepare** (load time): one pass over each function body computes the
  static operand-stack height at every branch and resolves all structured
  labels to flat jump targets — the side tables WAMR's loader and Wasm3's
  "M3 code" translator build.  Its cost is charged to the CPU model.

* **execute**: a dispatch loop over the original instruction tuples.  Per
  instruction it charges: the dispatch *indirect branch* (a single
  dispatch site for the classic interpreter, a per-instruction site for
  threaded code — which is exactly why threaded dispatch predicts
  better), the handler's instruction count, the handler's I-cache line,
  and two always-hitting L1D references for the operand stack.  Guest
  loads/stores additionally run through the full cache hierarchy at real
  linear-memory addresses, and guest conditional branches feed the
  conditional predictor, because the interpreter's ``br_if`` handler
  really does execute a data-dependent branch.

Finding 1/6/7/8's interpreter-side behavior (instruction blow-up, high
IPC, branch-miss profile) emerges from this structure rather than from
fitted constants.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ...errors import ReproError, Trap
from ...hw import CPUModel
from ...hw.config import RUNTIME_CODE_BASE
from ...isa import ops as mops
from ...isa import wasm_map
from ...isa.memory import LinearMemory
from ...wasm import Module
from ...wasm import opcodes as op
from ...wasm.module import KIND_FUNC, Function

# Load/store codecs keyed by *wasm* opcode.
_LOADC: Dict[int, tuple] = {}
for _wop, _mop in wasm_map.LOADS.items():
    _size, _fmt, _mask = mops.LOAD_CODEC[_mop]
    _LOADC[_wop] = (_size, struct.Struct("<" + _fmt).unpack_from, _mask)
_STOREC: Dict[int, tuple] = {}
for _wop, _mop in wasm_map.STORES.items():
    _size, _fmt, _mask = mops.STORE_CODEC[_mop]
    _STOREC[_wop] = (_size, struct.Struct("<" + _fmt).pack_into, _mask)

_BIN_FN = wasm_map.BIN_FN
_UN_FN = wasm_map.UN_FN

from ...speed.fastloop import fast_run as _fast_run  # noqa: E402

_MAX_DEPTH = 1000

import sys as _sys

if _sys.getrecursionlimit() < _MAX_DEPTH * 6 + 200:
    _sys.setrecursionlimit(_MAX_DEPTH * 6 + 200)


# ---------------------------------------------------------------------------
# Cost profiles
# ---------------------------------------------------------------------------


def _default_handler_costs(base: int) -> List[int]:
    """Charged instructions per handler, by wasm opcode."""
    costs = [base + 4] * 256
    for o in range(op.I32_EQZ, op.F64_REINTERPRET_I64 + 1):
        costs[o] = base + 4          # ALU / compare / convert
    for o in (op.I32_CONST, op.I64_CONST, op.F32_CONST, op.F64_CONST,
              op.LOCAL_GET, op.LOCAL_SET, op.LOCAL_TEE, op.DROP, op.NOP,
              op.BLOCK, op.LOOP, op.END):
        costs[o] = base + 2
    for o in list(range(op.I32_LOAD, op.I64_STORE32 + 1)):
        costs[o] = base + 6          # address calc + bounds check + access
    for o in (op.GLOBAL_GET, op.GLOBAL_SET, op.SELECT):
        costs[o] = base + 3
    for o in (op.BR, op.BR_IF, op.IF, op.ELSE):
        costs[o] = base + 4
    costs[op.BR_TABLE] = base + 8
    costs[op.CALL] = base + 26       # frame setup / teardown
    costs[op.CALL_INDIRECT] = base + 34
    costs[op.RETURN] = base + 8
    costs[op.MEMORY_SIZE] = base + 3
    costs[op.MEMORY_GROW] = base + 60
    costs[op.UNREACHABLE] = base + 2
    return costs


@dataclass(frozen=True)
class InterpProfile:
    """What kind of interpreter this is (classic vs threaded-code)."""

    name: str
    dispatch_cost: int            # instructions per dispatch
    handler_base: int             # baseline handler instructions
    threaded: bool                # per-site dispatch (Wasm3) vs one site
    translate_cost_per_op: int    # load-time translation work
    code_bytes_per_op: int        # memory for the loaded/translated code

    def handler_costs(self) -> List[int]:
        return _default_handler_costs(self.handler_base)


CLASSIC_PROFILE = InterpProfile(
    name="classic", dispatch_cost=5, handler_base=6, threaded=False,
    translate_cost_per_op=14, code_bytes_per_op=12)

THREADED_PROFILE = InterpProfile(
    name="threaded", dispatch_cost=3, handler_base=4, threaded=True,
    translate_cost_per_op=36, code_bytes_per_op=20)


# ---------------------------------------------------------------------------
# Preparation (the loader pass)
# ---------------------------------------------------------------------------


@dataclass
class PreparedFunction:
    index: int
    name: str
    params: int
    results: int
    local_types: List[int]
    body: List[tuple]
    side: Dict[int, tuple]
    code_addr: int = 0


def _stack_effect(module: Module, ins: tuple) -> Tuple[int, int]:
    """(pops, pushes) for non-control instructions."""
    o = ins[0]
    sig = op.SIGNATURES.get(o)
    if sig is not None:
        return len(sig[0]), len(sig[1])
    if o == op.LOCAL_GET or o == op.GLOBAL_GET:
        return 0, 1
    if o == op.LOCAL_SET or o == op.GLOBAL_SET or o == op.DROP:
        return 1, 0
    if o == op.LOCAL_TEE:
        return 1, 1
    if o == op.SELECT:
        return 3, 1
    if o == op.CALL:
        ftype = module.func_type(ins[1])
        return len(ftype.params), len(ftype.results)
    if o == op.CALL_INDIRECT:
        ftype = module.types[ins[1]]
        return len(ftype.params) + 1, len(ftype.results)
    if o == op.NOP:
        return 0, 0
    raise ReproError(f"no stack effect for {op.name_of(o)}")


def prepare_function(module: Module, func: Function,
                     index: int) -> PreparedFunction:
    """Resolve structured control flow into flat jump side tables."""
    ftype = module.types[func.type_index]
    body = func.body
    n = len(body)
    side: Dict[int, tuple] = {}

    # Control stack entries:
    # [opcode, entry_height, arity, start_pc, else_pc, patch_list,
    #  entry_unreachable]
    func_arity = len(ftype.results)
    ctrl: List[list] = [[0, 0, func_arity, -1, -1, [], False]]
    height = 0
    unreachable = False

    for pc, ins in enumerate(body):
        o = ins[0]
        if o in (op.BLOCK, op.LOOP, op.IF):
            if o == op.IF and not unreachable:
                height -= 1
            arity = 0 if ins[1] == 0x40 else 1
            ctrl.append([o, height, arity, pc, -1, [], unreachable])
            if o == op.IF:
                side[pc] = None  # patched at ELSE/END
        elif o == op.ELSE:
            entry = ctrl[-1]
            entry[4] = pc
            height = entry[1]
            unreachable = entry[6]
            side[pc] = None  # patched at END: jump over else arm
        elif o == op.END:
            entry = ctrl.pop()
            eo, entry_height, arity, start_pc, else_pc, patches, \
                entry_unreachable = entry
            after = pc + 1
            if eo == op.IF:
                if else_pc >= 0:
                    side[start_pc] = ("if", else_pc + 1)
                    side[else_pc] = ("jump", after)
                else:
                    side[start_pc] = ("if", after)
            for patch_pc, patch_kind in patches:
                existing = side.get(patch_pc)
                if patch_kind == "single":
                    tgt, a, h = existing[1]
                    side[patch_pc] = (existing[0], (after, a, h))
                else:  # br_table entry: (list_index or -1 for default)
                    kind, targets, default = existing
                    if patch_kind == -1:
                        default = (after, default[1], default[2])
                    else:
                        targets = list(targets)
                        targets[patch_kind] = (after, targets[patch_kind][1],
                                               targets[patch_kind][2])
                    side[patch_pc] = (kind, targets, default)
            height = entry_height + arity
            unreachable = entry_unreachable
        elif o in (op.BR, op.BR_IF):
            if o == op.BR_IF and not unreachable:
                height -= 1
            depth = ins[1]
            target = _branch_target(ctrl, depth, pc, side,
                                    "brif" if o == op.BR_IF else "br",
                                    n, unreachable)
            if o == op.BR:
                unreachable = True
        elif o == op.BR_TABLE:
            if not unreachable:
                height -= 1
            labels, default_depth = ins[1], ins[2]
            entries = []
            for k, depth in enumerate(labels):
                entries.append(_table_target(ctrl, depth, pc, k, n,
                                             unreachable, height))
            default = _table_target(ctrl, default_depth, pc, -1, n,
                                    unreachable, height)
            side[pc] = ("brtab", entries, default)
            # register patches
            for k, depth in enumerate(labels):
                _register_table_patch(ctrl, depth, pc, k)
            _register_table_patch(ctrl, default_depth, pc, -1)
            unreachable = True
        elif o == op.RETURN:
            side[pc] = ("return",)
            unreachable = True
        elif o == op.UNREACHABLE:
            unreachable = True
        else:
            if not unreachable:
                pops, pushes = _stack_effect(module, ins)
                height += pushes - pops

    local_types = list(ftype.params) + func.local_types()
    return PreparedFunction(index=index, name=func.name or f"f{index}",
                            params=len(ftype.params),
                            results=func_arity,
                            local_types=local_types, body=body, side=side)


def _branch_target(ctrl: List[list], depth: int, pc: int,
                   side: Dict[int, tuple], kind: str, body_len: int,
                   unreachable: bool) -> None:
    if depth >= len(ctrl):
        depth = len(ctrl) - 1
    entry = ctrl[-1 - depth]
    eo, entry_height, arity, start_pc = entry[0], entry[1], entry[2], entry[3]
    if eo == op.LOOP:
        side[pc] = (kind, (start_pc + 1, 0, entry_height))
    elif eo == 0:
        # Branch to the function label == return.
        side[pc] = (kind, (body_len, arity, entry_height))
    else:
        side[pc] = (kind, (-1, arity, entry_height))  # patched at END
        entry[5].append((pc, "single"))


def _table_target(ctrl: List[list], depth: int, pc: int, k: int,
                  body_len: int, unreachable: bool,
                  height: int) -> tuple:
    if depth >= len(ctrl):
        depth = len(ctrl) - 1
    entry = ctrl[-1 - depth]
    eo, entry_height, arity, start_pc = entry[0], entry[1], entry[2], entry[3]
    if eo == op.LOOP:
        return (start_pc + 1, 0, entry_height)
    if eo == 0:
        return (body_len, arity, entry_height)
    return (-1, arity, entry_height)


def _register_table_patch(ctrl: List[list], depth: int, pc: int,
                          k: int) -> None:
    if depth >= len(ctrl):
        depth = len(ctrl) - 1
    entry = ctrl[-1 - depth]
    if entry[0] not in (op.LOOP, 0):
        entry[5].append((pc, k))


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


class Interpreter:
    """Executes prepared functions against an environment."""

    def __init__(self, profile: InterpProfile, cpu: CPUModel,
                 memory: LinearMemory, globals_: List,
                 table: List[int], functions: List,
                 handler_costs: Optional[List[int]] = None):
        self.profile = profile
        self.cpu = cpu
        self.memory = memory
        self.globals = globals_
        self.table = table
        # functions: list of ("host", callable, n_params) or
        # ("wasm", PreparedFunction)
        self.functions = functions
        self.hcost = handler_costs or profile.handler_costs()
        self._depth = 0
        # Optional observer called as (func_index, pc, addr, size, is_store)
        # before every linear-memory access.  Used by the analysis test
        # suite as a ground-truth oracle for the static range analysis;
        # never set during normal runs.
        self.trace_memory = None
        # Optional observer called as (func_index, opcode, stack_len)
        # at every dispatch of the reference loop.  The static auditor
        # uses it to measure the executed opcode mix and the observed
        # operand-stack depth; like trace_memory it disables the fast
        # path (the fused loop does not replay per-op dispatch).
        self.opcode_profile = None
        # Predecoded fast code per function index (repro.speed); when a
        # function has an entry and no observer is attached, the
        # model-equivalent fast loop runs instead of the reference loop.
        self.fast_code: Optional[Dict[int, list]] = None
        # Closure-compiled functions per index (repro.speed.closures);
        # preferred over fast_code, same observer gating.
        self.closure_code: Optional[Dict[int, object]] = None
        # Handler code addresses: one cache line per opcode handler.
        shift = cpu.caches.line_shift
        self.handler_line = [
            (RUNTIME_CODE_BASE >> shift) + o * 2 for o in range(256)]

    def call(self, func_entry, args: Sequence):
        kind = func_entry[0]
        if kind == "host":
            return func_entry[1](self.memory, *args)
        return self._exec(func_entry[1], list(args))

    def call_index(self, index: int, args: Sequence):
        return self.call(self.functions[index], args)

    def _exec(self, func: PreparedFunction, args: List):
        self._depth += 1
        if self._depth > _MAX_DEPTH:
            self._depth -= 1
            raise Trap("call stack exhausted")
        try:
            return self._run(func, args)
        finally:
            self._depth -= 1

    def _run(self, func: PreparedFunction, args: List):
        if self.trace_memory is None and self.opcode_profile is None:
            code = self.closure_code
            if code is not None:
                fn = code.get(func.index)
                if fn is not None:
                    return fn(self, args)
            fast = self.fast_code
            if fast is not None:
                fcode = fast.get(func.index)
                if fcode is not None:
                    return _fast_run(self, func, fcode, args)
        return self._run_ref(func, args)

    def _run_ref(self, func: PreparedFunction, args: List):
        body = func.body
        side = func.side
        n = len(body)
        locals_ = args + [0.0 if t in (0x7D, 0x7C) else 0
                          for t in func.local_types[len(args):]]
        stack: List = []
        push = stack.append
        pop = stack.pop

        cpu = self.cpu
        counters = cpu.counters
        branches = cpu.branches
        indirect = branches.indirect_branch
        cond_branch = branches.cond_branch
        l1d = counters.l1d
        l1i_access = cpu.caches.l1i.access_line
        line_shift = cpu.caches.line_shift
        guest_line_base = 0x1000_0000 >> line_shift
        hcost = self.hcost
        hline = self.handler_line
        threaded = self.profile.threaded
        dispatch_cost = self.profile.dispatch_cost
        mem = self.memory
        globals_ = self.globals
        trace = self.trace_memory
        profile = self.opcode_profile
        func_tag = (func.index & 0x3FF) << 20
        stall = 0
        instr = 0

        pc = 0
        while pc < n:
            ins = body[pc]
            o = ins[0]
            if profile is not None:
                profile(func.index, o, len(stack))
            # --- the interpreter's own footprint ---
            instr += dispatch_cost + hcost[o]
            # Dispatch indirect branch.  Both modeled interpreters
            # pre-translate and dispatch from per-location sites (Wasm3's
            # threaded code; WAMR's fast-interpreter design); prediction
            # quality is then set by whether the hot bytecode footprint
            # fits the BTB — tiny kernels predict near-perfectly, a chess
            # engine's search core thrashes it (paper Table 5).
            indirect(func_tag | pc, o)
            l1d.refs += 2                      # operand-stack traffic (L1 hit)
            stall += l1i_access(hline[o])

            # --- guest semantics ---
            if o == op.LOCAL_GET:
                push(locals_[ins[1]])
            elif o == op.I32_CONST or o == op.I64_CONST \
                    or o == op.F32_CONST or o == op.F64_CONST:
                push(ins[1] if o > op.I64_CONST else ins[1] &
                     (0xFFFFFFFF if o == op.I32_CONST
                      else 0xFFFFFFFFFFFFFFFF))
            elif o in _BIN_FN:
                b = pop()
                a = pop()
                try:
                    push(_BIN_FN[o](a, b))
                except Trap:
                    counters.instructions += instr
                    counters.stall_cycles += stall
                    raise
            elif o == op.LOCAL_SET:
                locals_[ins[1]] = pop()
            elif o == op.LOCAL_TEE:
                locals_[ins[1]] = stack[-1]
            elif o in _UN_FN:
                try:
                    stack[-1] = _UN_FN[o](stack[-1])
                except Trap:
                    counters.instructions += instr
                    counters.stall_cycles += stall
                    raise
            elif o in _LOADC:
                size, unpack, mask = _LOADC[o]
                addr = pop() + ins[2]
                if trace is not None:
                    trace(func.index, pc, addr, size, False)
                if addr + size > mem.size:
                    counters.instructions += instr
                    counters.stall_cycles += stall
                    raise Trap("out of bounds memory access",
                               f"{func.name}: load at {addr}")
                value = unpack(mem.data, addr)[0]
                push((value & mask) if mask else value)
                stall += cpu.caches.l1d.access_line(
                    guest_line_base + (addr >> line_shift))
            elif o in _STOREC:
                size, pack, mask = _STOREC[o]
                value = pop()
                addr = pop() + ins[2]
                if trace is not None:
                    trace(func.index, pc, addr, size, True)
                if addr + size > mem.size:
                    counters.instructions += instr
                    counters.stall_cycles += stall
                    raise Trap("out of bounds memory access",
                               f"{func.name}: store at {addr}")
                pack(mem.data, addr, (value & mask) if mask else value)
                mem.touched.add(addr >> 12)
                stall += cpu.caches.l1d.access_line(
                    guest_line_base + (addr >> line_shift))
            elif o == op.BR_IF:
                cond = pop()
                kind, target = side[pc][0], side[pc][1]
                cond_branch(func_tag | pc, bool(cond))
                if cond:
                    tgt, arity, hgt = target
                    if arity:
                        vals = stack[-arity:]
                        del stack[hgt:]
                        stack.extend(vals)
                    else:
                        del stack[hgt:]
                    pc = tgt
                    continue
            elif o == op.BR:
                tgt, arity, hgt = side[pc][1]
                if arity:
                    vals = stack[-arity:]
                    del stack[hgt:]
                    stack.extend(vals)
                else:
                    del stack[hgt:]
                pc = tgt
                continue
            elif o == op.IF:
                cond = pop()
                cond_branch(func_tag | pc, not cond)
                if not cond:
                    pc = side[pc][1]
                    continue
            elif o == op.ELSE:
                pc = side[pc][1]
                continue
            elif o == op.BLOCK or o == op.LOOP or o == op.END or o == op.NOP:
                pass
            elif o == op.CALL:
                counters.instructions += instr
                counters.stall_cycles += stall
                instr = 0
                stall = 0
                callee = self.functions[ins[1]]
                branches.call(func_tag | pc)
                if callee[0] == "host":
                    n_args = callee[2]
                    call_args = stack[len(stack) - n_args:] if n_args else []
                    del stack[len(stack) - n_args:]
                    result = callee[1](mem, *call_args)
                else:
                    prepared = callee[1]
                    n_args = prepared.params
                    call_args = stack[len(stack) - n_args:] if n_args else []
                    del stack[len(stack) - n_args:]
                    result = self._exec(prepared, call_args)
                branches.ret(func_tag | pc)
                if result is not None:
                    push(result)
            elif o == op.CALL_INDIRECT:
                counters.instructions += instr
                counters.stall_cycles += stall
                instr = 0
                stall = 0
                elem_index = pop()
                if not 0 <= elem_index < len(self.table):
                    raise Trap("undefined element")
                callee_index = self.table[elem_index]
                if callee_index < 0:
                    raise Trap("uninitialized element")
                callee = self.functions[callee_index]
                expected = self._sig_of_type_index(ins[1])
                actual = self._sig_of_callee(callee)
                if expected != actual:
                    raise Trap("indirect call type mismatch")
                indirect(func_tag | pc | 0x8000_0000, callee_index)
                if callee[0] == "host":
                    n_args = callee[2]
                else:
                    n_args = callee[1].params
                call_args = stack[len(stack) - n_args:] if n_args else []
                del stack[len(stack) - n_args:]
                branches.call(func_tag | pc)
                if callee[0] == "host":
                    result = callee[1](mem, *call_args)
                else:
                    result = self._exec(callee[1], call_args)
                branches.ret(func_tag | pc)
                if result is not None:
                    push(result)
            elif o == op.GLOBAL_GET:
                push(globals_[ins[1]])
                l1d.refs += 1
            elif o == op.GLOBAL_SET:
                globals_[ins[1]] = pop()
                l1d.refs += 1
            elif o == op.DROP:
                pop()
            elif o == op.SELECT:
                c = pop()
                b = pop()
                a = pop()
                push(a if c else b)
            elif o == op.BR_TABLE:
                index = pop()
                kind, entries, default = side[pc]
                target = entries[index] if index < len(entries) else default
                indirect(func_tag | pc, target[0])
                tgt, arity, hgt = target
                if arity:
                    vals = stack[-arity:]
                    del stack[hgt:]
                    stack.extend(vals)
                else:
                    del stack[hgt:]
                pc = tgt
                continue
            elif o == op.RETURN:
                break
            elif o == op.MEMORY_SIZE:
                push(mem.pages)
            elif o == op.MEMORY_GROW:
                counters.instructions += 200
                push(mem.grow(pop()) & 0xFFFFFFFF)
            elif o == op.UNREACHABLE:
                counters.instructions += instr
                counters.stall_cycles += stall
                raise Trap("unreachable")
            else:  # pragma: no cover - exhaustive over the MVP set
                raise ReproError(f"interpreter: unhandled opcode "
                                 f"{op.name_of(o)}")
            pc += 1

        counters.instructions += instr
        counters.stall_cycles += stall
        if func.results:
            return stack[-1] if stack else 0
        return None

    # -- signature identity for call_indirect ----------------------------

    def set_signatures(self, module: Module) -> None:
        self._module_types = module.types
        self._func_sigs = {}
        for idx in range(module.num_funcs):
            self._func_sigs[idx] = module.func_type(idx)

    def _sig_of_type_index(self, type_index: int):
        return self._module_types[type_index]

    def _sig_of_callee(self, callee) -> object:
        if callee[0] == "host":
            return callee[3]
        return self._func_sigs[callee[1].index]
