"""Runtime scaffolding: the measurement protocol every runtime follows.

A run proceeds exactly like the paper's measurements, as an explicit
:class:`RunPipeline` of named phases — spawn the process (charge the
runtime's base footprint), decode the module, validate it, load it
(interpret-prepare or JIT-compile — the phase where the five runtimes
diverge), instantiate, execute ``_start`` under WASI, and tear down,
reading the PMU-equivalent counters and peak RSS at the end.

Every phase is individually instrumented: the pipeline attaches a
:class:`~repro.obs.spans.TraceBuilder` to the CPU model (``cpu.trace``),
opens a model-time span per phase, and derives ``compile_seconds`` /
``execute_seconds`` *from the span tree itself*, so the trace always
reconciles exactly with the headline numbers.  Span records are part of
:class:`RunResult` (pure functions of the inputs), which is what lets
warm-cache and parallel runs emit byte-identical traces.
"""

from __future__ import annotations

import abc
import base64
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .. import speed
from ..errors import ExitProc, ReproError, Trap
from ..hw import CPUModel, MachineConfig
from ..obs.spans import TraceBuilder
from ..registry import PIPELINE_PHASES
from ..wasi import VirtualFS, WasiAPI
from ..wasm import decode_module_with_stats, validate_module
from .instance import Environment, instantiate

# Decode/validate work factors (instructions charged per unit of work).
_DECODE_COST_PER_BYTE = 2
_DECODE_COST_PER_INSTR = 6
_VALIDATE_COST_PER_INSTR = 10


@dataclass
class RunResult:
    """Everything one measured execution produced."""

    runtime: str
    stdout: bytes
    exit_code: int
    trap: Optional[str]
    seconds: float
    cycles: int
    mrss_bytes: int
    counters: Dict[str, float]
    compile_seconds: float = 0.0      # JIT/AOT translation time
    execute_seconds: float = 0.0      # guest execution excl. load/compile
    memory_breakdown: Dict[str, int] = field(default_factory=dict)
    code_bytes: int = 0
    #: Model-time span tree (see repro.obs.spans / TRACING.md); every
    #: field is a pure function of the run configuration.
    trace: List[Dict] = field(default_factory=list)
    #: Per-WASI-function {"calls", "instructions", "bytes"} (the eWAPA
    #: view; instructions are engine-priced, calls/bytes invariant).
    wasi_calls: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.trap is None and self.exit_code == 0

    def stdout_text(self) -> str:
        return self.stdout.decode("utf-8", errors="replace")

    def phase_cycles(self) -> Dict[str, int]:
        """Cycles per top-level pipeline phase, from the span tree."""
        from ..obs.export import phase_cycles
        return phase_cycles(self.trace)

    # -- serialization (disk cache / cross-process transport) -------------

    def to_json(self) -> str:
        """Canonical JSON text; floats round-trip exactly via repr."""
        return json.dumps({
            "runtime": self.runtime,
            "stdout": base64.b64encode(self.stdout).decode("ascii"),
            "exit_code": self.exit_code,
            "trap": self.trap,
            "seconds": self.seconds,
            "cycles": self.cycles,
            "mrss_bytes": self.mrss_bytes,
            "counters": self.counters,
            "compile_seconds": self.compile_seconds,
            "execute_seconds": self.execute_seconds,
            "memory_breakdown": self.memory_breakdown,
            "code_bytes": self.code_bytes,
            "trace": self.trace,
            "wasi_calls": self.wasi_calls,
        }, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        data = json.loads(text)
        return cls(
            runtime=data["runtime"],
            stdout=base64.b64decode(data["stdout"]),
            exit_code=data["exit_code"],
            trap=data["trap"],
            seconds=data["seconds"],
            cycles=data["cycles"],
            mrss_bytes=data["mrss_bytes"],
            counters=dict(data["counters"]),
            compile_seconds=data["compile_seconds"],
            execute_seconds=data["execute_seconds"],
            memory_breakdown=dict(data["memory_breakdown"]),
            code_bytes=data["code_bytes"],
            trace=[dict(record) for record in data.get("trace", [])],
            wasi_calls={fn: dict(stats) for fn, stats
                        in data.get("wasi_calls", {}).items()},
        )


class RunPipeline:
    """One measured execution as an ordered sequence of named phases.

    The pipeline owns the cross-phase state (CPU model, WASI instance,
    decoded module, loaded form) and wraps each phase in a model-time
    span.  Phase spans are contiguous children of the root ``run`` span,
    so they sum exactly to the run's total cycles; ``compile_seconds``
    and ``execute_seconds`` are read back off the ``load`` and
    ``execute`` spans, making the trace and the headline metrics one
    source of truth.
    """

    PHASES = PIPELINE_PHASES

    def __init__(self, runtime: "WasmRuntime", wasm_bytes: bytes,
                 fs: Optional[VirtualFS] = None,
                 argv: Sequence[str] = ("wabench",),
                 config: Optional[MachineConfig] = None,
                 aot_image: Optional[object] = None):
        self.runtime = runtime
        self.wasm_bytes = wasm_bytes
        self.fs = fs if fs is not None else VirtualFS()
        self.argv = argv
        self.config = config
        self.aot_image = aot_image
        # Cross-phase state, populated as the pipeline advances.
        self.cpu: Optional[CPUModel] = None
        self.wasi: Optional[WasiAPI] = None
        self.module = None
        self.decode_stats = None
        self.loaded = None
        self.env: Optional[Environment] = None
        self.trap: Optional[str] = None
        self.exit_code = 0
        self._speed_entry = None

    def run(self) -> RunResult:
        """Execute every phase and assemble the measured result."""
        self.cpu = CPUModel(self.config)
        trace = TraceBuilder(self.cpu.counters)
        self.cpu.trace = trace
        phase_spans: Dict[str, Dict] = {}
        with trace.span("run", runtime=self.runtime.name,
                        mode=self.runtime.mode):
            for phase in self.PHASES:
                with trace.span(phase) as span:
                    getattr(self, "_phase_" + phase)()
                phase_spans[phase] = span
        return self._assemble(trace, phase_spans)

    # -- the phases, in order ---------------------------------------------

    def _phase_spawn(self) -> None:
        """Start the process: base footprint, module bytes, WASI."""
        cpu = self.cpu
        cpu.memory.alloc("runtime-base", self.runtime.runtime_base_bytes)
        cpu.memory.alloc("module-bytes", len(self.wasm_bytes))
        self.wasi = WasiAPI(fs=self.fs, cpu=cpu, argv=self.argv,
                            engine=self.runtime.name,
                            aot=self.aot_image is not None)

    def _phase_decode(self) -> None:
        # The decoded-module cache (repro.speed) shares the pure
        # decode/validate work across engines and runs.  The modeled
        # charge below is closed-form in the decode stats, so hit and
        # miss produce byte-identical counters and traces.
        entry = None
        if speed.enabled():
            entry = speed.module_cache.lookup(self.wasm_bytes)
        if entry is not None:
            self.module, self.decode_stats = entry.module, entry.stats
        else:
            self.module, self.decode_stats = \
                decode_module_with_stats(self.wasm_bytes)
            if speed.enabled():
                entry = speed.module_cache.register(
                    self.wasm_bytes, self.module, self.decode_stats)
        self._speed_entry = entry
        self.cpu.counters.instructions += (
            self.decode_stats.bytes_scanned * _DECODE_COST_PER_BYTE +
            self.decode_stats.instructions * _DECODE_COST_PER_INSTR)

    def _phase_validate(self) -> None:
        entry = self._speed_entry
        if entry is None or not entry.validated:
            validate_module(self.module)
            if entry is not None:
                speed.module_cache.mark_validated(entry)
        self.cpu.counters.instructions += (
            self.decode_stats.instructions * _VALIDATE_COST_PER_INSTR)
        self.cpu.memory.alloc("module-ir",
                              self.decode_stats.instructions * 12)

    def _phase_load(self) -> None:
        """Interpret-prepare or JIT-compile (where the runtimes diverge)."""
        self.loaded = self.runtime._load(self.module, self.cpu,
                                         self.aot_image)

    def _phase_instantiate(self) -> None:
        self.cpu.memory.checkpoint()
        self.env = instantiate(self.module, self.wasi, self.cpu)

    def _phase_execute(self) -> None:
        try:
            self.runtime._execute(self.loaded, self.env, self.cpu,
                                  self.wasi)
        except ExitProc as exc:
            self.exit_code = exc.code
        except Trap as exc:
            self.trap = str(exc)

    def _phase_teardown(self) -> None:
        """Final residency checkpoint (hot paths touch pages in bulk)."""
        self.cpu.memory.checkpoint()

    # -- readout -----------------------------------------------------------

    def _assemble(self, trace: TraceBuilder,
                  phase_spans: Dict[str, Dict]) -> RunResult:
        cpu = self.cpu
        to_seconds = cpu.config.cycles_to_seconds

        def span_seconds(name: str) -> float:
            span = phase_spans[name]
            return to_seconds(span["cycles_end"] - span["cycles_start"])

        return RunResult(
            runtime=self.runtime.name,
            stdout=bytes(self.fs.stdout),
            exit_code=self.exit_code,
            trap=self.trap,
            seconds=cpu.seconds,
            cycles=cpu.cycles,
            mrss_bytes=cpu.memory.peak_bytes,
            counters=cpu.counters.snapshot(),
            compile_seconds=span_seconds("load"),
            execute_seconds=span_seconds("execute"),
            memory_breakdown=cpu.memory.breakdown(),
            code_bytes=getattr(self.loaded, "code_bytes", 0),
            trace=trace.records(),
            wasi_calls=self.wasi.stats.as_dict(),
        )


class WasmRuntime(abc.ABC):
    """Base class of the five standalone runtime models."""

    #: short identifier, e.g. "wasmtime"
    name: str = "abstract"
    #: "jit" or "interp"
    mode: str = "abstract"
    #: process base footprint (binary + runtime heap at startup), bytes
    runtime_base_bytes: int = 1 << 20

    def run(self, wasm_bytes: bytes,
            fs: Optional[VirtualFS] = None,
            argv: Sequence[str] = ("wabench",),
            config: Optional[MachineConfig] = None,
            aot_image: Optional[object] = None) -> RunResult:
        """Execute a Wasm binary from cold start and measure everything."""
        return RunPipeline(self, wasm_bytes, fs=fs, argv=argv,
                           config=config, aot_image=aot_image).run()

    # -- phases the concrete runtimes implement ---------------------------

    @abc.abstractmethod
    def _load(self, module, cpu: CPUModel, aot_image: Optional[object]):
        """Prepare/compile the module; charge the work; return loaded form."""

    @abc.abstractmethod
    def _execute(self, loaded, env: Environment, cpu: CPUModel,
                 wasi: WasiAPI) -> None:
        """Run ``_start`` to completion."""

    # -- AOT -------------------------------------------------------------

    def compile_aot(self, wasm_bytes: bytes,
                    config: Optional[MachineConfig] = None):
        """Ahead-of-time compile; returns (image, compile_seconds)."""
        raise ReproError(f"{self.name} does not support AOT compilation")
