"""Runtime scaffolding: the measurement protocol every runtime follows.

A run proceeds exactly like the paper's measurements: start the process
(charge the runtime's base footprint), read the module from disk, decode
and validate it, load it (interpret-prepare or JIT-compile — the phase
where the five runtimes diverge), instantiate, execute ``_start`` under
WASI, and read the PMU-equivalent counters and peak RSS at the end.
"""

from __future__ import annotations

import abc
import base64
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from ..errors import ExitProc, ReproError, Trap
from ..hw import CPUModel, MachineConfig
from ..wasi import VirtualFS, WasiAPI
from ..wasm import Module, decode_module_with_stats, validate_module
from .instance import Environment, instantiate

# Decode/validate work factors (instructions charged per unit of work).
_DECODE_COST_PER_BYTE = 2
_DECODE_COST_PER_INSTR = 6
_VALIDATE_COST_PER_INSTR = 10


@dataclass
class RunResult:
    """Everything one measured execution produced."""

    runtime: str
    stdout: bytes
    exit_code: int
    trap: Optional[str]
    seconds: float
    cycles: int
    mrss_bytes: int
    counters: Dict[str, float]
    compile_seconds: float = 0.0      # JIT/AOT translation time
    execute_seconds: float = 0.0      # guest execution excl. load/compile
    memory_breakdown: Dict[str, int] = field(default_factory=dict)
    code_bytes: int = 0

    @property
    def ok(self) -> bool:
        return self.trap is None and self.exit_code == 0

    def stdout_text(self) -> str:
        return self.stdout.decode("utf-8", errors="replace")

    # -- serialization (disk cache / cross-process transport) -------------

    def to_json(self) -> str:
        """Canonical JSON text; floats round-trip exactly via repr."""
        return json.dumps({
            "runtime": self.runtime,
            "stdout": base64.b64encode(self.stdout).decode("ascii"),
            "exit_code": self.exit_code,
            "trap": self.trap,
            "seconds": self.seconds,
            "cycles": self.cycles,
            "mrss_bytes": self.mrss_bytes,
            "counters": self.counters,
            "compile_seconds": self.compile_seconds,
            "execute_seconds": self.execute_seconds,
            "memory_breakdown": self.memory_breakdown,
            "code_bytes": self.code_bytes,
        }, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        data = json.loads(text)
        return cls(
            runtime=data["runtime"],
            stdout=base64.b64decode(data["stdout"]),
            exit_code=data["exit_code"],
            trap=data["trap"],
            seconds=data["seconds"],
            cycles=data["cycles"],
            mrss_bytes=data["mrss_bytes"],
            counters=dict(data["counters"]),
            compile_seconds=data["compile_seconds"],
            execute_seconds=data["execute_seconds"],
            memory_breakdown=dict(data["memory_breakdown"]),
            code_bytes=data["code_bytes"],
        )


class WasmRuntime(abc.ABC):
    """Base class of the five standalone runtime models."""

    #: short identifier, e.g. "wasmtime"
    name: str = "abstract"
    #: "jit" or "interp"
    mode: str = "abstract"
    #: process base footprint (binary + runtime heap at startup), bytes
    runtime_base_bytes: int = 1 << 20

    def run(self, wasm_bytes: bytes,
            fs: Optional[VirtualFS] = None,
            argv: Sequence[str] = ("wabench",),
            config: Optional[MachineConfig] = None,
            aot_image: Optional[object] = None) -> RunResult:
        """Execute a Wasm binary from cold start and measure everything."""
        cpu = CPUModel(config)
        cpu.memory.alloc("runtime-base", self.runtime_base_bytes)
        cpu.memory.alloc("module-bytes", len(wasm_bytes))

        fs = fs if fs is not None else VirtualFS()
        wasi = WasiAPI(fs=fs, cpu=cpu, argv=argv)

        module, decode_stats = decode_module_with_stats(wasm_bytes)
        cpu.counters.instructions += (
            decode_stats.bytes_scanned * _DECODE_COST_PER_BYTE +
            decode_stats.instructions * _DECODE_COST_PER_INSTR)
        validate_module(module)
        cpu.counters.instructions += (
            decode_stats.instructions * _VALIDATE_COST_PER_INSTR)
        cpu.memory.alloc("module-ir", decode_stats.instructions * 12)

        load_start_cycles = cpu.cycles
        loaded = self._load(module, cpu, aot_image)
        compile_cycles = cpu.cycles - load_start_cycles
        cpu.memory.checkpoint()

        env = instantiate(module, wasi, cpu)
        exec_start_cycles = cpu.cycles

        trap: Optional[str] = None
        exit_code = 0
        try:
            self._execute(loaded, env, cpu, wasi)
        except ExitProc as exc:
            exit_code = exc.code
        except Trap as exc:
            trap = str(exc)
        cpu.memory.checkpoint()

        counters = cpu.counters.snapshot()
        return RunResult(
            runtime=self.name,
            stdout=bytes(fs.stdout),
            exit_code=exit_code,
            trap=trap,
            seconds=cpu.seconds,
            cycles=cpu.cycles,
            mrss_bytes=cpu.memory.peak_bytes,
            counters=counters,
            compile_seconds=cpu.config.cycles_to_seconds(compile_cycles),
            execute_seconds=cpu.config.cycles_to_seconds(
                cpu.cycles - exec_start_cycles),
            memory_breakdown=cpu.memory.breakdown(),
            code_bytes=getattr(loaded, "code_bytes", 0),
        )

    # -- phases the concrete runtimes implement ---------------------------

    @abc.abstractmethod
    def _load(self, module: Module, cpu: CPUModel,
              aot_image: Optional[object]):
        """Prepare/compile the module; charge the work; return loaded form."""

    @abc.abstractmethod
    def _execute(self, loaded, env: Environment, cpu: CPUModel,
                 wasi: WasiAPI) -> None:
        """Run ``_start`` to completion."""

    # -- AOT -------------------------------------------------------------

    def compile_aot(self, wasm_bytes: bytes,
                    config: Optional[MachineConfig] = None):
        """Ahead-of-time compile; returns (image, compile_seconds)."""
        raise ReproError(f"{self.name} does not support AOT compilation")
