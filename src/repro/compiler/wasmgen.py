"""MiniC -> WebAssembly code generation.

Lowers the typed AST onto a :class:`~repro.wasm.ModuleBuilder`, following
the same conventions the WASI SDK's LLVM backend uses:

* all C globals live in linear memory at static addresses;
* a mutable Wasm global ``__stack_pointer`` implements the shadow stack
  holding arrays and address-taken locals;
* scalar locals become Wasm locals;
* address-taken functions go into the ``funcref`` table (slot 0 is kept
  empty so a null function pointer traps);
* string literals are interned into the data segment;
* the synthesized ``_start`` export initializes libc, runs ``main``, and
  reports its exit code through WASI ``proc_exit``.

Only functions reachable from the entry points are emitted, so module
size tracks what the program actually uses (this matters for the paper's
compile-time experiments).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..errors import CompileError, MiniCTypeError
from ..minic import ast
from ..minic.sema import BUILTINS, SemanticAnalyzer, WASI_EXTERNS
from ..minic.typesys import CHAR, CType, DOUBLE, FLOAT, INT, LONG, UINT, VOID
from ..wasm import FuncType, ModuleBuilder, Module
from ..wasm import opcodes as op
from ..wasm.builder import FunctionBuilder
from ..wasm.types import F32, F64, I32, I64, VOID as WVOID

DATA_BASE = 1024
STACK_SIZE = 256 * 1024
WASI_MODULE = "wasi_snapshot_preview1"

# ---------------------------------------------------------------------------
# Operator tables
# ---------------------------------------------------------------------------

_I32_BIN = {"+": op.I32_ADD, "-": op.I32_SUB, "*": op.I32_MUL,
            "&": op.I32_AND, "|": op.I32_OR, "^": op.I32_XOR,
            "<<": op.I32_SHL}
_I64_BIN = {"+": op.I64_ADD, "-": op.I64_SUB, "*": op.I64_MUL,
            "&": op.I64_AND, "|": op.I64_OR, "^": op.I64_XOR,
            "<<": op.I64_SHL}
_F32_BIN = {"+": op.F32_ADD, "-": op.F32_SUB, "*": op.F32_MUL,
            "/": op.F32_DIV}
_F64_BIN = {"+": op.F64_ADD, "-": op.F64_SUB, "*": op.F64_MUL,
            "/": op.F64_DIV}
_I32_CMP_S = {"==": op.I32_EQ, "!=": op.I32_NE, "<": op.I32_LT_S,
              ">": op.I32_GT_S, "<=": op.I32_LE_S, ">=": op.I32_GE_S}
_I32_CMP_U = {"==": op.I32_EQ, "!=": op.I32_NE, "<": op.I32_LT_U,
              ">": op.I32_GT_U, "<=": op.I32_LE_U, ">=": op.I32_GE_U}
_I64_CMP_S = {"==": op.I64_EQ, "!=": op.I64_NE, "<": op.I64_LT_S,
              ">": op.I64_GT_S, "<=": op.I64_LE_S, ">=": op.I64_GE_S}
_I64_CMP_U = {"==": op.I64_EQ, "!=": op.I64_NE, "<": op.I64_LT_U,
              ">": op.I64_GT_U, "<=": op.I64_LE_U, ">=": op.I64_GE_U}
_F32_CMP = {"==": op.F32_EQ, "!=": op.F32_NE, "<": op.F32_LT,
            ">": op.F32_GT, "<=": op.F32_LE, ">=": op.F32_GE}
_F64_CMP = {"==": op.F64_EQ, "!=": op.F64_NE, "<": op.F64_LT,
            ">": op.F64_GT, "<=": op.F64_LE, ">=": op.F64_GE}

_BUILTIN_OPS = {
    "__builtin_sqrt": (op.F64_SQRT,),
    "__builtin_fabs": (op.F64_ABS,),
    "__builtin_floor": (op.F64_FLOOR,),
    "__builtin_ceil": (op.F64_CEIL,),
    "__builtin_trunc": (op.F64_TRUNC,),
    "__builtin_nearest": (op.F64_NEAREST,),
    "__builtin_sqrtf": (op.F32_SQRT,),
    "__builtin_clz": (op.I32_CLZ,),
    "__builtin_ctz": (op.I32_CTZ,),
    "__builtin_popcount": (op.I32_POPCNT,),
    "__builtin_memory_size": (op.MEMORY_SIZE,),
    "__builtin_memory_grow": (op.MEMORY_GROW,),
    "__builtin_trap": (op.UNREACHABLE,),
}


def _load_op(t: CType) -> Tuple[int, int]:
    """(opcode, natural alignment log2) to load a value of type ``t``."""
    if t.kind == "char":
        return (op.I32_LOAD8_U if t.unsigned else op.I32_LOAD8_S), 0
    if t.kind == "short":
        return (op.I32_LOAD16_U if t.unsigned else op.I32_LOAD16_S), 1
    if t.kind == "int" or t.is_pointer:
        return op.I32_LOAD, 2
    if t.kind == "long":
        return op.I64_LOAD, 3
    if t.kind == "float":
        return op.F32_LOAD, 2
    if t.kind == "double":
        return op.F64_LOAD, 3
    raise CompileError(f"cannot load type {t}")


def _store_op(t: CType) -> Tuple[int, int]:
    if t.kind == "char":
        return op.I32_STORE8, 0
    if t.kind == "short":
        return op.I32_STORE16, 1
    if t.kind == "int" or t.is_pointer:
        return op.I32_STORE, 2
    if t.kind == "long":
        return op.I64_STORE, 3
    if t.kind == "float":
        return op.F32_STORE, 2
    if t.kind == "double":
        return op.F64_STORE, 3
    raise CompileError(f"cannot store type {t}")


class _LoopContext:
    def __init__(self, break_label: str, continue_label: Optional[str]):
        self.break_label = break_label
        self.continue_label = continue_label


class CodeGenerator:
    """Generates one Wasm module from an analyzed translation unit."""

    def __init__(self, unit: ast.TranslationUnit, analyzer: SemanticAnalyzer,
                 entry: str = "main"):
        self.unit = unit
        self.analyzer = analyzer
        self.entry = entry
        self.mb = ModuleBuilder()
        self.global_addr: Dict[str, int] = {}
        self.string_addr: Dict[bytes, int] = {}
        self.table_slot: Dict[str, int] = {}
        self.data_chunks: List[Tuple[int, bytes]] = []
        self.heap_base = 0
        self.stack_top = 0
        self.sp_global = -1
        self._label_counter = 0
        self._imports_used: Dict[str, int] = {}
        # per-function state
        self._fb: Optional[FunctionBuilder] = None
        self._func: Optional[ast.FuncDef] = None
        self._frame_local = -1
        self._local_map: Dict[int, int] = {}
        self._scratch: Dict[int, int] = {}
        self._loops: List[_LoopContext] = []

    # ------------------------------------------------------------------
    # Reachability and layout
    # ------------------------------------------------------------------

    def _reachable_functions(self) -> List[ast.FuncDef]:
        defined = {f.name: f for f in self.unit.functions
                   if f.body is not None}
        roots = [self.entry, "__libc_init", "__libc_shutdown"]
        roots += [n for n in self.analyzer.address_taken_funcs if n in defined]
        seen: Set[str] = set()
        order: List[ast.FuncDef] = []
        stack = [r for r in roots if r in defined]
        if self.entry not in defined:
            raise CompileError(f"entry function {self.entry!r} is not defined")
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            func = defined[name]
            order.append(func)
            for callee in _called_names(func):
                if callee in defined and callee not in seen:
                    stack.append(callee)
        # Keep source order for determinism.
        order.sort(key=lambda f: self.unit.functions.index(f))
        # Referenced-but-undefined functions are link errors.
        for func in order:
            for callee in _called_names(func):
                if callee not in defined and callee not in WASI_EXTERNS \
                        and callee not in BUILTINS:
                    raise CompileError(
                        f"undefined function {callee!r} referenced from "
                        f"{func.name!r}")
        return order

    def _used_globals(self, functions: List[ast.FuncDef]) -> List[ast.GlobalVar]:
        used: Set[str] = set()
        for func in functions:
            _collect_global_refs(func, used)
        return [g for g in self.unit.globals if g.name in used]

    def _layout_memory(self, functions: List[ast.FuncDef],
                       globals_: List[ast.GlobalVar]) -> None:
        addr = DATA_BASE
        # Strings first (read-only data).
        for func in functions:
            for lit in _string_literals(func):
                if lit.value not in self.string_addr:
                    self.string_addr[lit.value] = addr
                    self.data_chunks.append((addr, lit.value))
                    addr += len(lit.value)
        addr = (addr + 15) & ~15
        for glob in globals_:
            t = glob.var_type
            align = max(t.align, 4) if t.is_array else t.align
            addr = (addr + align - 1) & ~(align - 1)
            glob.address = addr
            self.global_addr[glob.name] = addr
            payload = _global_init_bytes(glob, self.string_addr,
                                         self._intern_string)
            if payload is not None and any(payload):
                self.data_chunks.append((addr, payload))
            addr += t.size
        addr = (addr + 15) & ~15
        stack_bottom = addr
        self.stack_top = stack_bottom + STACK_SIZE
        self.heap_base = (self.stack_top + 65535) & ~65535

    def _intern_string(self, value: bytes) -> int:
        addr = self.string_addr.get(value)
        if addr is None:
            raise CompileError("string literal not laid out")
        return addr

    # ------------------------------------------------------------------
    # Top-level generation
    # ------------------------------------------------------------------

    def generate(self) -> Module:
        functions = self._reachable_functions()
        globals_ = self._used_globals(functions)

        # WASI imports actually used by reachable code.
        used_externs: Set[str] = set()
        for func in functions:
            for callee in _called_names(func):
                if callee in WASI_EXTERNS:
                    used_externs.add(callee)
        used_externs.add("__wasi_proc_exit")  # _start always exits
        for name in sorted(used_externs):
            wasi_name, ret, params = WASI_EXTERNS[name]
            ftype = FuncType(tuple(p.wasm_type for p in params),
                             () if ret.is_void else (ret.wasm_type,))
            index = self.mb.import_function(WASI_MODULE, wasi_name, ftype,
                                            local_name=name)
            self._imports_used[name] = index

        self._layout_memory(functions, globals_)

        self.sp_global = self.mb.add_global(
            "__stack_pointer", I32, True, (op.I32_CONST, self.stack_top))

        # Reserve indices so any call order works.
        for func in functions:
            self.mb.reserve_function(func.name)
        self.mb.reserve_function("_start")

        # funcref table: slot 0 stays empty (null pointer traps).
        taken = sorted(n for n in self.analyzer.address_taken_funcs
                       if any(f.name == n for f in functions))
        for slot, name in enumerate(taken, start=1):
            self.table_slot[name] = slot

        for func in functions:
            self._gen_function(func)
        self._gen_start(functions)

        if taken:
            self.mb.add_element(1, taken)
        elif any(_has_indirect_call(f) for f in functions):
            self.mb.set_table(1)

        pages = (self.heap_base + 65535) // 65536 + 1
        self.mb.set_memory(pages, None)
        for addr, payload in sorted(self.data_chunks):
            self.mb.add_data(addr, payload)
        return self.mb.build()

    def _gen_start(self, functions: List[ast.FuncDef]) -> None:
        fb = self.mb.define_reserved("_start", [], [], export=True)
        names = {f.name for f in functions}
        if "__libc_init" in names:
            fb.call_named("__libc_init")
        main = next(f for f in functions if f.name == self.entry)
        fb.call_named(self.entry)
        if main.ret.is_void:
            fb.i32_const(0)
        elif main.ret != INT:
            raise CompileError("main must return int or void")
        if "__libc_shutdown" in names:
            # Stash the exit code, flush stdio, then exit with it.
            code_local = fb.add_local(I32)
            fb.local_set(code_local)
            fb.call_named("__libc_shutdown")
            fb.local_get(code_local)
        fb.call(self._imports_used["__wasi_proc_exit"])

    # ------------------------------------------------------------------
    # Function generation
    # ------------------------------------------------------------------

    def _gen_function(self, func: ast.FuncDef) -> None:
        params = [p.ptype.decay().wasm_type for p in func.params]
        results = [] if func.ret.is_void else [func.ret.wasm_type]
        fb = self.mb.define_reserved(func.name, params, results)
        self._fb = fb
        self._func = func
        self._local_map = {}
        self._scratch = {}
        self._loops = []
        self._frame_local = -1

        # Map sema's local indices to wasm local indices.
        param_decls = getattr(func, "param_decls", [])
        n_params = len(func.params)
        wasm_index = n_params
        for decl in _all_decls(func):
            if decl.needs_memory:
                continue
            if decl in param_decls:
                self._local_map[id(decl)] = param_decls.index(decl)
            else:
                self._local_map[id(decl)] = fb.add_local(
                    decl.var_type.wasm_type)

        if func.frame_size > 0:
            self._frame_local = fb.add_local(I32)
            fb.global_get(self.sp_global)
            fb.i32_const(func.frame_size)
            fb.emit(op.I32_SUB)
            fb.local_tee(self._frame_local)
            fb.global_set(self.sp_global)
            # Copy memory-resident parameters into the frame.
            for decl in param_decls:
                if decl.needs_memory:
                    store, align = _store_op(decl.var_type)
                    fb.local_get(self._frame_local)
                    fb.local_get(param_decls.index(decl))
                    fb.emit(store, align, decl.frame_offset)

        # Body inside an exit block so `return` can restore the stack ptr.
        result_type = WVOID if func.ret.is_void else func.ret.wasm_type
        self._return_local = -1
        if not func.ret.is_void:
            self._return_local = fb.add_local(func.ret.wasm_type)
        fb.block("__func_exit")
        self._gen_stmt(func.body)
        if not func.ret.is_void:
            # Falling off the end of a value-returning function: return 0,
            # mirroring C's (undefined but common) behavior.
            self._push_zero(func.ret)
            fb.local_set(self._return_local)
        fb.end()
        if func.frame_size > 0:
            fb.local_get(self._frame_local)
            fb.i32_const(func.frame_size)
            fb.emit(op.I32_ADD)
            fb.global_set(self.sp_global)
        if not func.ret.is_void:
            fb.local_get(self._return_local)
        self._fb = None
        self._func = None

    def _push_zero(self, t: CType) -> None:
        fb = self._fb
        wt = t.wasm_type
        if wt == I32:
            fb.i32_const(0)
        elif wt == I64:
            fb.i64_const(0)
        elif wt == F32:
            fb.f32_const(0.0)
        else:
            fb.f64_const(0.0)

    def _label(self, stem: str) -> str:
        self._label_counter += 1
        return f"{stem}{self._label_counter}"

    def _scratch_local(self, wasm_type: int, slot: int = 0) -> int:
        key = wasm_type * 4 + slot
        if key not in self._scratch:
            self._scratch[key] = self._fb.add_local(wasm_type)
        return self._scratch[key]

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _gen_stmt(self, stmt: ast.Stmt) -> None:
        fb = self._fb
        if isinstance(stmt, ast.Block):
            for s in stmt.statements:
                self._gen_stmt(s)
        elif isinstance(stmt, ast.VarDecl):
            self._gen_decl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self._gen_expr(stmt.expr, want_value=False)
        elif isinstance(stmt, ast.If):
            self._gen_condition(stmt.cond)
            label = self._label("if")
            fb.if_(label)
            self._gen_stmt(stmt.then)
            if stmt.other is not None:
                fb.else_()
                self._gen_stmt(stmt.other)
            fb.end()
        elif isinstance(stmt, ast.While):
            brk, top = self._label("wbrk"), self._label("wtop")
            fb.block(brk)
            fb.loop(top)
            self._gen_condition(stmt.cond)
            fb.emit(op.I32_EQZ)
            fb.br_if(brk)
            self._loops.append(_LoopContext(brk, top))
            self._gen_stmt(stmt.body)
            self._loops.pop()
            fb.br(top)
            fb.end()
            fb.end()
        elif isinstance(stmt, ast.DoWhile):
            brk, top, cont = (self._label("dbrk"), self._label("dtop"),
                              self._label("dcont"))
            fb.block(brk)
            fb.loop(top)
            fb.block(cont)
            self._loops.append(_LoopContext(brk, cont))
            self._gen_stmt(stmt.body)
            self._loops.pop()
            fb.end()
            self._gen_condition(stmt.cond)
            fb.br_if(top)
            fb.end()
            fb.end()
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                self._gen_stmt(stmt.init)
            brk, top, cont = (self._label("fbrk"), self._label("ftop"),
                              self._label("fcont"))
            fb.block(brk)
            fb.loop(top)
            if stmt.cond is not None:
                self._gen_condition(stmt.cond)
                fb.emit(op.I32_EQZ)
                fb.br_if(brk)
            fb.block(cont)
            self._loops.append(_LoopContext(brk, cont))
            self._gen_stmt(stmt.body)
            self._loops.pop()
            fb.end()
            if stmt.step is not None:
                self._gen_expr(stmt.step, want_value=False)
            fb.br(top)
            fb.end()
            fb.end()
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._gen_expr(stmt.value)
                fb.local_set(self._return_local)
            fb.br("__func_exit")
        elif isinstance(stmt, ast.Break):
            if not self._loops:
                raise CompileError("break outside loop/switch")
            fb.br(self._loops[-1].break_label)
        elif isinstance(stmt, ast.Continue):
            for ctx in reversed(self._loops):
                if ctx.continue_label is not None:
                    fb.br(ctx.continue_label)
                    break
            else:
                raise CompileError("continue outside loop")
        elif isinstance(stmt, ast.Switch):
            self._gen_switch(stmt)
        else:
            raise CompileError(f"unhandled statement {type(stmt).__name__}")

    def _gen_decl(self, decl: ast.VarDecl) -> None:
        fb = self._fb
        if decl.init is not None and not decl.var_type.is_array:
            if decl.needs_memory:
                fb.local_get(self._frame_local)
                self._gen_expr(decl.init)
                store, align = _store_op(decl.var_type)
                fb.emit(store, align, decl.frame_offset)
            else:
                self._gen_expr(decl.init)
                fb.local_set(self._local_map[id(decl)])
        elif isinstance(decl.init, ast.StrLit) and decl.var_type.is_array:
            # char buf[] = "..." — copy the string into the frame.
            addr = self.string_addr[decl.init.value]
            self._emit_frame_copy(decl.frame_offset, addr,
                                  len(decl.init.value))
        if decl.init_list is not None:
            elem = decl.var_type
            while elem.is_array:
                elem = elem.elem
            store, align = _store_op(elem)
            for i, item in enumerate(decl.init_list):
                fb.local_get(self._frame_local)
                self._gen_expr(item)
                fb.emit(store, align, decl.frame_offset + i * elem.size)

    def _emit_frame_copy(self, frame_offset: int, src_addr: int,
                         length: int) -> None:
        """Inline copy of a constant-length byte range into the frame."""
        fb = self._fb
        offset = 0
        while length - offset >= 8:
            fb.local_get(self._frame_local)
            fb.i32_const(src_addr + offset)
            fb.emit(op.I64_LOAD, 0, 0)
            fb.emit(op.I64_STORE, 0, frame_offset + offset)
            offset += 8
        while offset < length:
            fb.local_get(self._frame_local)
            fb.i32_const(src_addr + offset)
            fb.emit(op.I32_LOAD8_U, 0, 0)
            fb.emit(op.I32_STORE8, 0, frame_offset + offset)
            offset += 1

    def _gen_switch(self, stmt: ast.Switch) -> None:
        fb = self._fb
        cases = stmt.cases
        exit_label = self._label("sbrk")
        case_labels = [self._label("scase") for _ in cases]
        default_ordinal = next((i for i, c in enumerate(cases)
                                if c.value is None), None)

        fb.block(exit_label)
        for label in reversed(case_labels):
            fb.block(label)

        # Dispatch on the scrutinee.
        self._gen_expr(stmt.scrutinee)
        values = [(c.value, i) for i, c in enumerate(cases)
                  if c.value is not None]
        default_label = (case_labels[default_ordinal]
                         if default_ordinal is not None else exit_label)
        if values:
            lo = min(v for v, _ in values)
            hi = max(v for v, _ in values)
            span = hi - lo + 1
            if len(values) >= 3 and span <= 3 * len(values) + 8:
                table = {v: i for v, i in values}
                labels = [case_labels[table[lo + k]] if lo + k in table
                          else default_label for k in range(span)]
                if lo:
                    fb.i32_const(lo)
                    fb.emit(op.I32_SUB)
                fb.br_table(labels, default_label)
            else:
                scrutinee = self._scratch_local(I32, 3)
                fb.local_set(scrutinee)
                for v, i in values:
                    fb.local_get(scrutinee)
                    fb.i32_const(v)
                    fb.emit(op.I32_EQ)
                    fb.br_if(case_labels[i])
                fb.br(default_label)
        else:
            fb.emit(op.DROP)
            fb.br(default_label)

        self._loops.append(_LoopContext(exit_label, None))
        for i, case in enumerate(cases):
            fb.end()  # closes case_labels[i]
            for s in case.body:
                self._gen_stmt(s)
        self._loops.pop()
        fb.end()  # exit

    # ------------------------------------------------------------------
    # Conditions (value on stack as i32 truth)
    # ------------------------------------------------------------------

    def _gen_condition(self, expr: ast.Expr) -> None:
        """Push the condition as an i32 (non-zero = true)."""
        fb = self._fb
        t = expr.ctype
        # Comparisons and logical ops already produce i32 truth values.
        if isinstance(expr, ast.Binary) and expr.op in (
                "==", "!=", "<", ">", "<=", ">=", "&&", "||"):
            self._gen_expr(expr)
            return
        if isinstance(expr, ast.Unary) and expr.op == "!":
            self._gen_expr(expr)
            return
        self._gen_expr(expr)
        wt = t.wasm_type
        if wt == I32:
            return  # non-zero test is implicit for br_if/if
        if wt == I64:
            fb.i64_const(0)
            fb.emit(op.I64_NE)
        elif wt == F32:
            fb.f32_const(0.0)
            fb.emit(op.F32_NE)
        else:
            fb.f64_const(0.0)
            fb.emit(op.F64_NE)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _gen_expr(self, expr: ast.Expr, want_value: bool = True) -> None:
        fb = self._fb
        if isinstance(expr, ast.IntLit):
            if expr.ctype.wasm_type == I64:
                fb.i64_const(_wrap_signed(expr.value, 64))
            else:
                fb.i32_const(_wrap_signed(expr.value, 32))
        elif isinstance(expr, ast.FloatLit):
            if expr.ctype == FLOAT:
                fb.f32_const(expr.value)
            else:
                fb.f64_const(expr.value)
        elif isinstance(expr, ast.StrLit):
            fb.i32_const(self.string_addr[expr.value])
        elif isinstance(expr, ast.Ident):
            self._gen_ident(expr)
        elif isinstance(expr, ast.Unary):
            self._gen_unary(expr)
        elif isinstance(expr, ast.AddrOf):
            self._gen_addr_of(expr)
        elif isinstance(expr, ast.Deref):
            self._gen_expr(expr.operand)
            load, align = _load_op(expr.ctype)
            fb.emit(load, align, 0)
        elif isinstance(expr, ast.Index):
            self._gen_index_addr(expr)
            if expr.ctype.is_pointer and expr.base.ctype.pointee.is_array:
                return  # address of sub-array is the value
            load, align = _load_op(expr.ctype)
            fb.emit(load, align, 0)
        elif isinstance(expr, ast.Binary):
            self._gen_binary(expr)
        elif isinstance(expr, ast.Assign):
            self._gen_assign(expr, want_value)
            return
        elif isinstance(expr, ast.IncDec):
            self._gen_incdec(expr, want_value)
            return
        elif isinstance(expr, ast.Cond):
            self._gen_condition(expr.cond)
            label = self._label("sel")
            fb.if_(label, expr.ctype.wasm_type)
            self._gen_expr(expr.then)
            fb.else_()
            self._gen_expr(expr.other)
            fb.end()
        elif isinstance(expr, ast.Call):
            self._gen_call(expr, want_value)
            return
        elif isinstance(expr, ast.Cast):
            self._gen_cast(expr)
        else:
            raise CompileError(f"unhandled expression {type(expr).__name__}")
        if not want_value:
            if expr.ctype is not None and not expr.ctype.is_void:
                fb.emit(op.DROP)

    def _gen_ident(self, expr: ast.Ident) -> None:
        fb = self._fb
        kind, payload = expr.binding
        if kind == "local":
            decl = payload
            if decl.var_type.is_array:
                fb.local_get(self._frame_local)
                if decl.frame_offset:
                    fb.i32_const(decl.frame_offset)
                    fb.emit(op.I32_ADD)
            elif decl.needs_memory:
                fb.local_get(self._frame_local)
                load, align = _load_op(decl.var_type)
                fb.emit(load, align, decl.frame_offset)
            else:
                fb.local_get(self._local_map[id(decl)])
        elif kind == "global":
            glob = payload
            if glob.var_type.is_array:
                fb.i32_const(self.global_addr[glob.name])
            else:
                fb.i32_const(self.global_addr[glob.name])
                load, align = _load_op(glob.var_type)
                fb.emit(load, align, 0)
        elif kind == "func":
            slot = self.table_slot.get(payload)
            if slot is None:
                raise CompileError(
                    f"function {payload!r} used as value but not marked "
                    "address-taken")
            fb.i32_const(slot)
        else:
            raise CompileError(f"builtin {payload!r} used as value")

    def _gen_addr_of(self, expr: ast.AddrOf) -> None:
        fb = self._fb
        inner = expr.operand
        if isinstance(inner, ast.Ident):
            kind, payload = inner.binding
            if kind == "local":
                fb.local_get(self._frame_local)
                if payload.frame_offset:
                    fb.i32_const(payload.frame_offset)
                    fb.emit(op.I32_ADD)
            elif kind == "global":
                fb.i32_const(self.global_addr[payload.name])
            elif kind == "func":
                fb.i32_const(self.table_slot[payload])
            else:
                raise CompileError("cannot take address of builtin")
        elif isinstance(inner, ast.Index):
            self._gen_index_addr(inner)
        else:
            raise CompileError("unsupported address-of operand")

    def _gen_index_addr(self, expr: ast.Index) -> None:
        """Push the address of base[index]."""
        fb = self._fb
        self._gen_expr(expr.base)
        elem = expr.base.ctype.pointee
        self._gen_expr(expr.index)
        if elem.size != 1:
            fb.i32_const(elem.size)
            fb.emit(op.I32_MUL)
        fb.emit(op.I32_ADD)

    def _lvalue_is_simple_local(self, target: ast.Expr) -> Optional[ast.VarDecl]:
        if isinstance(target, ast.Ident) and target.binding[0] == "local":
            decl = target.binding[1]
            if not decl.needs_memory and not decl.var_type.is_array:
                return decl
        return None

    def _gen_lvalue_addr(self, target: ast.Expr) -> CType:
        """Push the address of a memory lvalue; returns the stored type."""
        fb = self._fb
        if isinstance(target, ast.Ident):
            kind, payload = target.binding
            if kind == "local":
                fb.local_get(self._frame_local)
                if payload.frame_offset:
                    fb.i32_const(payload.frame_offset)
                    fb.emit(op.I32_ADD)
                return payload.var_type
            if kind == "global":
                fb.i32_const(self.global_addr[payload.name])
                return payload.var_type
            raise CompileError("cannot assign to function")
        if isinstance(target, ast.Deref):
            self._gen_expr(target.operand)
            return target.operand.ctype.pointee
        if isinstance(target, ast.Index):
            self._gen_index_addr(target)
            return target.base.ctype.pointee
        raise CompileError("unsupported lvalue")

    def _gen_assign(self, expr: ast.Assign, want_value: bool) -> None:
        fb = self._fb
        target = expr.target
        simple = self._lvalue_is_simple_local(target)
        if expr.op == "=":
            if simple is not None:
                self._gen_expr(expr.value)
                index = self._local_map[id(simple)]
                if want_value:
                    fb.local_tee(index)
                else:
                    fb.local_set(index)
                return
            self._gen_lvalue_addr(target)
            self._gen_expr(expr.value)
            if want_value:
                sv = self._scratch_local(expr.ctype.wasm_type, 1)
                fb.local_tee(sv)
            store, align = _store_op(_stored_type(target))
            fb.emit(store, align, 0)
            if want_value:
                fb.local_get(self._scratch[expr.ctype.wasm_type * 4 + 1])
            return

        # Compound assignment: target = target OP value
        binop = expr.op[:-1]
        if simple is not None:
            index = self._local_map[id(simple)]
            fb.local_get(index)
            self._apply_compound(expr, binop, simple.var_type)
            if want_value:
                fb.local_tee(index)
            else:
                fb.local_set(index)
            return
        sa = self._scratch_local(I32, 0)
        self._gen_lvalue_addr(target)
        fb.local_tee(sa)
        stored = _stored_type(target)
        load, lalign = _load_op(stored)
        fb.emit(load, lalign, 0)
        self._apply_compound(expr, binop, expr.ctype)
        if want_value:
            sv = self._scratch_local(expr.ctype.wasm_type, 1)
            fb.local_set(sv)
            fb.local_get(sa)
            fb.local_get(sv)
        else:
            sv = self._scratch_local(expr.ctype.wasm_type, 1)
            fb.local_set(sv)
            fb.local_get(sa)
            fb.local_get(sv)
        store, salign = _store_op(stored)
        fb.emit(store, salign, 0)
        if want_value:
            fb.local_get(sv)

    def _apply_compound(self, expr: ast.Assign, binop: str,
                        target_type: CType) -> None:
        """With the old value on the stack, compute the new value."""
        fb = self._fb
        t = expr.ctype
        if t.is_pointer:
            self._gen_expr(expr.value)
            if t.pointee.size != 1:
                fb.i32_const(t.pointee.size)
                fb.emit(op.I32_MUL)
            fb.emit(op.I32_ADD if binop == "+" else op.I32_SUB)
            return
        # Arithmetic compound assignment computes in the common type of
        # target and value, then converts back to the target type.
        value_type = expr.value.ctype
        from ..minic.typesys import common_arith_type, promote
        work = common_arith_type(t, value_type)
        self._emit_conversion(t, work)
        self._gen_expr(expr.value)
        self._emit_conversion(value_type, work)
        self._emit_binop(binop, work)
        self._emit_conversion(work, t)

    def _gen_incdec(self, expr: ast.IncDec, want_value: bool) -> None:
        fb = self._fb
        t = expr.ctype
        step = t.pointee.size if t.is_pointer else 1
        simple = self._lvalue_is_simple_local(expr.target)
        wt = t.wasm_type
        if simple is not None:
            index = self._local_map[id(simple)]
            if want_value and not expr.prefix:
                fb.local_get(index)  # old value as result
            fb.local_get(index)
            self._push_step(t, step)
            self._emit_step_op(t, expr.op)
            if want_value and expr.prefix:
                fb.local_tee(index)
            else:
                fb.local_set(index)
            return
        sa = self._scratch_local(I32, 0)
        sv = self._scratch_local(wt, 1)
        self._gen_lvalue_addr(expr.target)
        fb.local_tee(sa)
        stored = _stored_type(expr.target)
        load, lalign = _load_op(stored)
        fb.emit(load, lalign, 0)
        fb.local_set(sv)
        fb.local_get(sa)
        fb.local_get(sv)
        self._push_step(t, step)
        self._emit_step_op(t, expr.op)
        store, salign = _store_op(stored)
        if want_value and expr.prefix:
            sv2 = self._scratch_local(wt, 2)
            fb.local_tee(sv2)
            fb.emit(store, salign, 0)
            fb.local_get(sv2)
        else:
            fb.emit(store, salign, 0)
            if want_value:
                fb.local_get(sv)  # postfix: old value

    def _push_step(self, t: CType, step: int) -> None:
        fb = self._fb
        wt = t.wasm_type
        if wt == I32:
            fb.i32_const(step)
        elif wt == I64:
            fb.i64_const(step)
        elif wt == F32:
            fb.f32_const(1.0)
        else:
            fb.f64_const(1.0)

    def _emit_step_op(self, t: CType, incop: str) -> None:
        fb = self._fb
        wt = t.wasm_type
        add = {I32: op.I32_ADD, I64: op.I64_ADD,
               F32: op.F32_ADD, F64: op.F64_ADD}[wt]
        sub = {I32: op.I32_SUB, I64: op.I64_SUB,
               F32: op.F32_SUB, F64: op.F64_SUB}[wt]
        fb.emit(add if incop == "++" else sub)

    def _gen_unary(self, expr: ast.Unary) -> None:
        fb = self._fb
        t = expr.ctype
        if expr.op == "!":
            inner_t = expr.operand.ctype
            self._gen_expr(expr.operand)
            wt = inner_t.wasm_type
            if wt == I32:
                fb.emit(op.I32_EQZ)
            elif wt == I64:
                fb.emit(op.I64_EQZ)
            elif wt == F32:
                fb.f32_const(0.0)
                fb.emit(op.F32_EQ)
            else:
                fb.f64_const(0.0)
                fb.emit(op.F64_EQ)
            return
        if expr.op == "-":
            if t.is_float:
                self._gen_expr(expr.operand)
                fb.emit(op.F32_NEG if t == FLOAT else op.F64_NEG)
            elif t.wasm_type == I64:
                fb.i64_const(0)
                self._gen_expr(expr.operand)
                fb.emit(op.I64_SUB)
            else:
                fb.i32_const(0)
                self._gen_expr(expr.operand)
                fb.emit(op.I32_SUB)
            return
        if expr.op == "~":
            self._gen_expr(expr.operand)
            if t.wasm_type == I64:
                fb.i64_const(-1)
                fb.emit(op.I64_XOR)
            else:
                fb.i32_const(-1)
                fb.emit(op.I32_XOR)
            return
        raise CompileError(f"unhandled unary {expr.op}")

    def _gen_binary(self, expr: ast.Binary) -> None:
        fb = self._fb
        o = expr.op
        if o == "&&":
            label = self._label("and")
            self._gen_condition(expr.left)
            fb.if_(label, I32)
            self._gen_condition(expr.right)
            self._normalize_bool(expr.right)
            fb.else_()
            fb.i32_const(0)
            fb.end()
            return
        if o == "||":
            label = self._label("or")
            self._gen_condition(expr.left)
            fb.if_(label, I32)
            fb.i32_const(1)
            fb.else_()
            self._gen_condition(expr.right)
            self._normalize_bool(expr.right)
            fb.end()
            return

        lt = expr.left.ctype
        if o in ("==", "!=", "<", ">", "<=", ">="):
            self._gen_expr(expr.left)
            self._gen_expr(expr.right)
            self._emit_compare(o, lt)
            return

        t = expr.ctype
        if t.is_pointer:
            if o == "+":
                # one side is the pointer
                if lt.is_pointer:
                    self._gen_expr(expr.left)
                    self._gen_expr(expr.right)
                    self._scale_index(t.pointee.size)
                else:
                    self._gen_expr(expr.right)
                    self._gen_expr(expr.left)
                    self._scale_index(t.pointee.size)
                fb.emit(op.I32_ADD)
                return
            if o == "-":
                self._gen_expr(expr.left)
                self._gen_expr(expr.right)
                self._scale_index(t.pointee.size)
                fb.emit(op.I32_SUB)
                return
        if o == "-" and lt.is_pointer and expr.right.ctype.is_pointer:
            self._gen_expr(expr.left)
            self._gen_expr(expr.right)
            fb.emit(op.I32_SUB)
            size = lt.pointee.size
            if size != 1:
                fb.i32_const(size)
                fb.emit(op.I32_DIV_S)
            return

        self._gen_expr(expr.left)
        self._gen_expr(expr.right)
        self._emit_binop(o, t)

    def _normalize_bool(self, expr: ast.Expr) -> None:
        """Ensure an i32 truth value is exactly 0 or 1."""
        fb = self._fb
        if isinstance(expr, ast.Binary) and expr.op in (
                "==", "!=", "<", ">", "<=", ">=", "&&", "||"):
            return
        if isinstance(expr, ast.Unary) and expr.op == "!":
            return
        fb.i32_const(0)
        fb.emit(op.I32_NE)

    def _scale_index(self, size: int) -> None:
        if size != 1:
            self._fb.i32_const(size)
            self._fb.emit(op.I32_MUL)

    def _emit_compare(self, o: str, operand_type: CType) -> None:
        fb = self._fb
        t = operand_type
        if t.is_pointer:
            fb.emit(_I32_CMP_U[o])
        elif t.kind == "long":
            fb.emit((_I64_CMP_U if t.unsigned else _I64_CMP_S)[o])
        elif t == FLOAT:
            fb.emit(_F32_CMP[o])
        elif t == DOUBLE:
            fb.emit(_F64_CMP[o])
        else:
            fb.emit((_I32_CMP_U if t.unsigned else _I32_CMP_S)[o])

    def _emit_binop(self, o: str, t: CType) -> None:
        fb = self._fb
        wt = t.wasm_type
        if wt == I32:
            if o in _I32_BIN:
                fb.emit(_I32_BIN[o])
            elif o == "/":
                fb.emit(op.I32_DIV_U if t.unsigned else op.I32_DIV_S)
            elif o == "%":
                fb.emit(op.I32_REM_U if t.unsigned else op.I32_REM_S)
            elif o == ">>":
                fb.emit(op.I32_SHR_U if t.unsigned else op.I32_SHR_S)
            else:
                raise CompileError(f"unhandled i32 operator {o}")
        elif wt == I64:
            if o in _I64_BIN:
                fb.emit(_I64_BIN[o])
            elif o == "/":
                fb.emit(op.I64_DIV_U if t.unsigned else op.I64_DIV_S)
            elif o == "%":
                fb.emit(op.I64_REM_U if t.unsigned else op.I64_REM_S)
            elif o == ">>":
                fb.emit(op.I64_SHR_U if t.unsigned else op.I64_SHR_S)
            else:
                raise CompileError(f"unhandled i64 operator {o}")
        elif wt == F32:
            if o not in _F32_BIN:
                raise CompileError(f"unhandled f32 operator {o}")
            fb.emit(_F32_BIN[o])
        else:
            if o not in _F64_BIN:
                raise CompileError(f"unhandled f64 operator {o}")
            fb.emit(_F64_BIN[o])

    def _gen_call(self, expr: ast.Call, want_value: bool) -> None:
        fb = self._fb
        func = expr.func
        if isinstance(func, ast.Ident) and func.binding[0] == "builtin":
            name = func.binding[1]
            for arg in expr.args:
                self._gen_expr(arg)
            if name == "__builtin_heap_base":
                fb.i32_const(self.heap_base)
            else:
                for opcode in _BUILTIN_OPS[name]:
                    fb.emit(opcode)
            if not want_value and not expr.ctype.is_void:
                fb.emit(op.DROP)
            return
        if isinstance(func, ast.Ident) and func.binding[0] == "func":
            name = func.binding[1]
            for arg in expr.args:
                self._gen_expr(arg)
            if name in WASI_EXTERNS:
                fb.call(self._imports_used[name])
            else:
                fb.call_named(name)
            if not want_value and not expr.ctype.is_void:
                fb.emit(op.DROP)
            return
        # Indirect call through a function pointer (a table index).
        sig = func.ctype.pointee
        for arg in expr.args:
            self._gen_expr(arg)
        self._gen_expr(func)
        ftype = FuncType(tuple(p.decay().wasm_type for p in sig.params),
                         () if sig.ret.is_void else (sig.ret.wasm_type,))
        type_index = self.mb.intern_type(ftype)
        fb.emit(op.CALL_INDIRECT, type_index, 0)
        if not want_value and not expr.ctype.is_void:
            fb.emit(op.DROP)

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------

    def _gen_cast(self, expr: ast.Cast) -> None:
        self._gen_expr(expr.operand)
        self._emit_conversion(expr.operand.ctype, expr.target_type)

    def _emit_conversion(self, src: CType, dst: CType) -> None:
        fb = self._fb
        if src == dst or dst.is_void:
            return
        swt = src.wasm_type if not src.is_void else None
        dwt = dst.wasm_type

        if src.is_pointer:
            src = UINT
            swt = I32
        if dst.is_pointer:
            dst = UINT
            dwt = I32

        if src.is_float and dst.is_float:
            fb.emit(op.F64_PROMOTE_F32 if dst == DOUBLE else op.F32_DEMOTE_F64)
            return
        if src.is_float and dst.is_integer:
            if dwt == I64:
                if src == FLOAT:
                    fb.emit(op.I64_TRUNC_F32_U if dst.unsigned
                            else op.I64_TRUNC_F32_S)
                else:
                    fb.emit(op.I64_TRUNC_F64_U if dst.unsigned
                            else op.I64_TRUNC_F64_S)
            else:
                if src == FLOAT:
                    fb.emit(op.I32_TRUNC_F32_U if dst.unsigned
                            else op.I32_TRUNC_F32_S)
                else:
                    fb.emit(op.I32_TRUNC_F64_U if dst.unsigned
                            else op.I32_TRUNC_F64_S)
                self._narrow_i32(dst)
            return
        if src.is_integer and dst.is_float:
            if swt == I64:
                if dst == FLOAT:
                    fb.emit(op.F32_CONVERT_I64_U if src.unsigned
                            else op.F32_CONVERT_I64_S)
                else:
                    fb.emit(op.F64_CONVERT_I64_U if src.unsigned
                            else op.F64_CONVERT_I64_S)
            else:
                if dst == FLOAT:
                    fb.emit(op.F32_CONVERT_I32_U if src.unsigned
                            else op.F32_CONVERT_I32_S)
                else:
                    fb.emit(op.F64_CONVERT_I32_U if src.unsigned
                            else op.F64_CONVERT_I32_S)
            return
        if src.is_integer and dst.is_integer:
            if swt == I32 and dwt == I64:
                fb.emit(op.I64_EXTEND_I32_U if src.unsigned
                        else op.I64_EXTEND_I32_S)
            elif swt == I64 and dwt == I32:
                fb.emit(op.I32_WRAP_I64)
                self._narrow_i32(dst)
            else:
                self._narrow_i32(dst)
            return
        raise CompileError(f"cannot convert {src} to {dst}")

    def _narrow_i32(self, dst: CType) -> None:
        """Truncate an i32 value to char/short width (value semantics)."""
        fb = self._fb
        if dst.kind == "char":
            if dst.unsigned:
                fb.i32_const(0xFF)
                fb.emit(op.I32_AND)
            else:
                fb.i32_const(24)
                fb.emit(op.I32_SHL)
                fb.i32_const(24)
                fb.emit(op.I32_SHR_S)
        elif dst.kind == "short":
            if dst.unsigned:
                fb.i32_const(0xFFFF)
                fb.emit(op.I32_AND)
            else:
                fb.i32_const(16)
                fb.emit(op.I32_SHL)
                fb.i32_const(16)
                fb.emit(op.I32_SHR_S)


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _wrap_signed(value: int, bits: int) -> int:
    mask = (1 << bits) - 1
    value &= mask
    if value >> (bits - 1):
        value -= 1 << bits
    return value


def _stored_type(target: ast.Expr) -> CType:
    """The in-memory type a store to this lvalue writes."""
    if isinstance(target, ast.Ident):
        return target.binding[1].var_type
    if isinstance(target, ast.Deref):
        return target.operand.ctype.pointee
    if isinstance(target, ast.Index):
        return target.base.ctype.pointee
    raise CompileError("unsupported lvalue")


#: Per-class tuple of walkable field names (non-child metadata fields
#: pre-filtered), so the walker loop skips the membership tests.
_WALK_FIELDS: dict = {}


def _walk_field_names(cls):
    names = _WALK_FIELDS.get(cls)
    if names is None:
        skip = ("ctype", "target_type", "var_type", "binding")
        names = tuple(n for n in ast.field_names(cls) if n not in skip)
        _WALK_FIELDS[cls] = names
    return names


def _walk_exprs(node):
    """Return every expression node in a statement/expression tree."""
    out = []
    stack = [node]
    pop = stack.pop
    extend = stack.extend
    is_expr = ast.Expr
    walkable = (ast.Expr, ast.Stmt, ast.SwitchCase)
    walk_field_names = _walk_field_names
    while stack:
        current = pop()
        if current is None:
            continue
        if isinstance(current, list):
            extend(current)
            continue
        if isinstance(current, is_expr):
            out.append(current)
        if isinstance(current, walkable):
            for name in walk_field_names(current.__class__):
                stack.append(getattr(current, name))
    return out


def _called_names(func: ast.FuncDef) -> Set[str]:
    names: Set[str] = set()
    for expr in _walk_exprs(func.body):
        if isinstance(expr, ast.Ident) and expr.binding \
                and expr.binding[0] == "func":
            names.add(expr.binding[1])
        elif isinstance(expr, ast.Ident) and expr.binding is None:
            pass
        elif isinstance(expr, ast.Call) and isinstance(expr.func, ast.Ident) \
                and expr.func.binding is None:
            names.add(expr.func.name)
    return names


def _collect_global_refs(func: ast.FuncDef, out: Set[str]) -> None:
    for expr in _walk_exprs(func.body):
        if isinstance(expr, ast.Ident) and expr.binding \
                and expr.binding[0] == "global":
            out.add(expr.binding[1].name)


def _string_literals(func: ast.FuncDef):
    for expr in _walk_exprs(func.body):
        if isinstance(expr, ast.StrLit):
            yield expr


def _has_indirect_call(func: ast.FuncDef) -> bool:
    for expr in _walk_exprs(func.body):
        if isinstance(expr, ast.Call) and not (
                isinstance(expr.func, ast.Ident) and expr.func.binding
                and expr.func.binding[0] in ("func", "builtin")):
            return True
    return False


def _all_decls(func: ast.FuncDef) -> List[ast.VarDecl]:
    decls: List[ast.VarDecl] = list(getattr(func, "param_decls", []))
    stack: List = [func.body]
    seen = set()
    ordered: List[ast.VarDecl] = []
    for d in decls:
        seen.add(id(d))
        ordered.append(d)

    def visit(node):
        if node is None:
            return
        if isinstance(node, ast.VarDecl):
            if id(node) not in seen:
                seen.add(id(node))
                ordered.append(node)
            return
        if isinstance(node, ast.Block):
            for s in node.statements:
                visit(s)
        elif isinstance(node, ast.If):
            visit(node.then)
            visit(node.other)
        elif isinstance(node, (ast.While, ast.DoWhile)):
            visit(node.body)
        elif isinstance(node, ast.For):
            visit(node.init)
            visit(node.body)
        elif isinstance(node, ast.Switch):
            for case in node.cases:
                for s in case.body:
                    visit(s)

    visit(func.body)
    return ordered


def _global_init_bytes(glob: ast.GlobalVar, string_addr: Dict[bytes, int],
                       intern) -> Optional[bytes]:
    """Serialize a global's initializer into raw little-endian bytes."""
    import struct as _struct
    t = glob.var_type
    if glob.init is None and glob.init_list is None:
        return None
    if glob.init_list is not None:
        elem = t
        while elem.is_array:
            elem = elem.elem
        out = bytearray(t.size)
        from ..minic.parser import _fold_const_int
        for i, item in enumerate(glob.init_list):
            value = _item_const(item)
            _pack_scalar(out, i * elem.size, elem, value)
        return bytes(out)
    if isinstance(glob.init, ast.StrLit):
        if t.is_array:
            out = bytearray(t.size)
            out[:len(glob.init.value)] = glob.init.value
            return bytes(out)
        # char* global pointing at an interned string
        out = bytearray(4)
        _struct.pack_into("<I", out, 0, string_addr[glob.init.value])
        return bytes(out)
    value = _item_const(glob.init)
    out = bytearray(t.size)
    _pack_scalar(out, 0, t, value)
    return bytes(out)


def _item_const(item: ast.Expr):
    from ..minic.parser import _fold_const_int
    if isinstance(item, ast.FloatLit):
        return item.value
    if isinstance(item, ast.IntLit):
        return item.value
    if isinstance(item, ast.Cast):
        return _item_const(item.operand)
    if isinstance(item, ast.Unary) and item.op == "-":
        return -_item_const(item.operand)
    folded = _fold_const_int(item)
    if folded is None:
        raise CompileError("non-constant global initializer")
    return folded


def _pack_scalar(out: bytearray, offset: int, t: CType, value) -> None:
    import struct as _struct
    if t.kind == "double":
        _struct.pack_into("<d", out, offset, float(value))
    elif t.kind == "float":
        _struct.pack_into("<f", out, offset, float(value))
    elif t.kind == "long":
        _struct.pack_into("<Q", out, offset, int(value) & (2 ** 64 - 1))
    elif t.kind == "short":
        _struct.pack_into("<H", out, offset, int(value) & 0xFFFF)
    elif t.kind == "char":
        out[offset] = int(value) & 0xFF
    else:
        _struct.pack_into("<I", out, offset, int(value) & 0xFFFFFFFF)


def generate_module(unit: ast.TranslationUnit, analyzer: SemanticAnalyzer,
                    entry: str = "main") -> Module:
    """Convenience wrapper: typed AST -> validated Wasm module."""
    return CodeGenerator(unit, analyzer, entry).generate()
