"""The MiniC -> WebAssembly optimizing compiler (the paper's WASI SDK).

Public entry point: :func:`compile_source` (``wasicc``).
"""

from .driver import DEFAULT_OPT_LEVEL, CompileResult, compile_source
from .libc import LIBC_SOURCE

__all__ = ["DEFAULT_OPT_LEVEL", "CompileResult", "compile_source",
           "LIBC_SOURCE"]
