"""The MiniC -> WebAssembly optimizing compiler (the paper's WASI SDK).

Public entry point: :func:`compile_source` (``wasicc``).
"""

from .driver import (COMPILER_VERSION, DEFAULT_OPT_LEVEL, CompileResult,
                     compile_source, config_fingerprint)
from .libc import LIBC_SOURCE

__all__ = ["COMPILER_VERSION", "DEFAULT_OPT_LEVEL", "CompileResult",
           "compile_source", "config_fingerprint", "LIBC_SOURCE"]
