"""``wasicc`` — the MiniC-to-WebAssembly compiler driver.

The reproduction's equivalent of the WASI SDK's ``clang --target=wasm32-
wasi``: it concatenates the MiniC libc in front of the program, runs the
frontend, the -O-gated midend, Wasm code generation, the Wasm-level
peephole pass, validation, and binary encoding.

``-O`` levels match the paper's experiment axis (Fig. 4):
  -O0  everything in memory, no optimization
  -O1  fold/simplify + peephole
  -O2  + strength reduction and inlining          (the paper's default)
  -O3  + loop unrolling
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import CompileError
from ..minic import analyze, parse
from ..obs import NULL_TRACER
from ..minic.ast import TranslationUnit
from ..minic.sema import SemanticAnalyzer
from ..wasm import Module, encode_module, validate_module
from . import midend
from .libc import LIBC_SOURCE
from .peephole import peephole_module
from .wasmgen import CodeGenerator

DEFAULT_OPT_LEVEL = 2

#: Bump whenever codegen, the midend, or the peephole pass changes in a way
#: that alters emitted binaries; it invalidates every on-disk artifact.
COMPILER_VERSION = "wasicc-1"


def config_fingerprint(opt_level: int,
                       defines: Optional[Dict[str, str]] = None,
                       include_libc: bool = True,
                       entry: str = "main") -> str:
    """Stable hash of everything (besides the source text) that changes
    compilation output: the -O level, the preprocessor defines, whether the
    libc is prepended (and its exact text), the entry symbol, and the
    compiler version stamp.  Used as part of on-disk artifact cache keys."""
    payload = json.dumps({
        "compiler": COMPILER_VERSION,
        "opt": opt_level,
        "defines": sorted((defines or {}).items()),
        "libc": hashlib.sha256(LIBC_SOURCE.encode()).hexdigest()
                if include_libc else None,
        "entry": entry,
    }, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class CompileResult:
    """Everything the harness wants to know about one compile."""

    wasm_bytes: bytes
    module: Module
    unit: TranslationUnit
    analyzer: SemanticAnalyzer
    opt_level: int
    midend_stats: Dict[str, int] = field(default_factory=dict)
    peephole_removed: int = 0

    @property
    def binary_size(self) -> int:
        return len(self.wasm_bytes)

    @property
    def instruction_count(self) -> int:
        return self.module.body_size()

    @property
    def function_count(self) -> int:
        return len(self.module.functions)


def compile_source(source: str, opt_level: int = DEFAULT_OPT_LEVEL,
                   defines: Optional[Dict[str, str]] = None,
                   include_libc: bool = True,
                   entry: str = "main",
                   tracer=None) -> CompileResult:
    """Compile MiniC source text to a WebAssembly binary.

    ``tracer`` (a :class:`repro.obs.Tracer`) gets one wall-clock session
    span per driver phase — frontend (parse + semantic analysis), midend
    (the -O-gated optimization pipeline), backend (codegen, peephole,
    validation, encoding) — the compile-side half of the phase-resolved
    measurement story.
    """
    obs = tracer if tracer is not None else NULL_TRACER
    if not 0 <= opt_level <= 3:
        raise CompileError(f"invalid optimization level -O{opt_level}")
    full_source = (LIBC_SOURCE + "\n" + source) if include_libc else source
    all_defines = {"TARGET_NATIVE": "0"}
    all_defines.update(defines or {})
    with obs.span("frontend", opt=opt_level) as span:
        unit = parse(full_source, all_defines)
        analyzer = analyze(unit, force_locals_to_memory=(opt_level == 0))
        span.attrs["functions"] = len(unit.functions)
    with obs.span("midend", opt=opt_level) as span:
        midend_stats = midend.optimize(unit, opt_level)
        span.attrs.update(midend_stats)
    with obs.span("backend", opt=opt_level) as span:
        module = CodeGenerator(unit, analyzer, entry).generate()
        removed = peephole_module(module) if opt_level >= 1 else 0
        validate_module(module)
        wasm_bytes = encode_module(module)
        span.attrs["binary_size"] = len(wasm_bytes)
        span.attrs["peephole_removed"] = removed
    return CompileResult(wasm_bytes=wasm_bytes, module=module, unit=unit,
                         analyzer=analyzer, opt_level=opt_level,
                         midend_stats=midend_stats,
                         peephole_removed=removed)


# ---------------------------------------------------------------------------
# Command-line driver (console script: ``wasicc``)
# ---------------------------------------------------------------------------


def _parse_defines(items: Optional[List[str]]) -> Dict[str, str]:
    defines: Dict[str, str] = {}
    for item in items or []:
        name, _, value = item.partition("=")
        defines[name] = value if value else "1"
    return defines


def _rebase_error(exc: CompileError, include_libc: bool) -> str:
    """Point frontend error lines into the user's file, not the
    libc-concatenated translation unit."""
    msg = str(exc)
    line = getattr(exc, "line", 0)
    if not (include_libc and line):
        return msg
    offset = LIBC_SOURCE.count("\n") + 1
    if line <= offset:
        return msg
    return msg.replace(str(line), str(line - offset), 1)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="wasicc",
        description="MiniC-to-WebAssembly compiler driver")
    parser.add_argument("source", help="MiniC source file")
    parser.add_argument("-o", "--output",
                        help="output wasm path (default: <source>.wasm)")
    parser.add_argument("-O", dest="opt", type=int,
                        default=DEFAULT_OPT_LEVEL, metavar="LEVEL",
                        help="optimization level 0-3 (default 2)")
    parser.add_argument("-D", dest="defines", action="append",
                        metavar="NAME[=VALUE]", help="preprocessor define")
    parser.add_argument("--no-libc", action="store_true",
                        help="do not prepend the MiniC libc")
    parser.add_argument("--analyze", action="store_true",
                        help="run the sanitizer instead of compiling; "
                             "exits 1 when findings are reported")
    parser.add_argument("--metrics", action="store_true",
                        help="compile and print a static-metrics report "
                             "instead of writing a binary")
    parser.add_argument("--audit", action="store_true",
                        help="compile and print the static audit (call "
                             "graph, cost model, lint diagnostics) "
                             "instead of writing a binary; exits 1 when "
                             "diagnostics are reported")
    parser.add_argument("--timings", action="store_true",
                        help="print per-phase (frontend/midend/backend) "
                             "wall times after compiling")
    args = parser.parse_args(argv)

    try:
        with open(args.source, "r") as fh:
            source = fh.read()
    except OSError as exc:
        print(f"wasicc: cannot read {args.source}: {exc}", file=sys.stderr)
        return 2
    defines = _parse_defines(args.defines)

    if args.analyze:
        from ..analysis.sanitizer import analyze_source
        try:
            findings = analyze_source(source, defines=defines,
                                      include_libc=not args.no_libc)
        except CompileError as exc:
            print(f"wasicc: {_rebase_error(exc, not args.no_libc)}",
                  file=sys.stderr)
            return 2
        for finding in findings:
            print(finding.format(args.source))
        if findings:
            print(f"wasicc: {len(findings)} finding(s)", file=sys.stderr)
            return 1
        return 0

    tracer = None
    if args.timings:
        from ..obs import Tracer
        tracer = Tracer()
    try:
        result = compile_source(source, opt_level=args.opt, defines=defines,
                                include_libc=not args.no_libc,
                                tracer=tracer)
    except CompileError as exc:
        print(f"wasicc: {_rebase_error(exc, not args.no_libc)}",
              file=sys.stderr)
        return 2
    if tracer is not None:
        for span in tracer.session_spans:
            print(f"wasicc: [{span.name:8s}] {span.wall_seconds * 1e3:8.2f} "
                  f"ms wall")

    if args.metrics:
        from ..analysis.metrics import module_report, render_report
        print(render_report(module_report(result.module), args.source))
        return 0

    if args.audit:
        from ..analysis.audit import audit_wasm
        # Audit the encoded bytes (not the in-memory module) so the
        # report also covers encoding-level findings such as WA006.
        audit = audit_wasm(result.wasm_bytes, name=args.source)
        print(audit.render())
        return 1 if audit.diagnostics else 0

    output = args.output or (args.source.rsplit(".", 1)[0] + ".wasm")
    with open(output, "wb") as fh:
        fh.write(result.wasm_bytes)
    print(f"wasicc: wrote {output} ({result.binary_size} bytes, "
          f"-O{result.opt_level})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
