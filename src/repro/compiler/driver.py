"""``wasicc`` — the MiniC-to-WebAssembly compiler driver.

The reproduction's equivalent of the WASI SDK's ``clang --target=wasm32-
wasi``: it concatenates the MiniC libc in front of the program, runs the
frontend, the -O-gated midend, Wasm code generation, the Wasm-level
peephole pass, validation, and binary encoding.

``-O`` levels match the paper's experiment axis (Fig. 4):
  -O0  everything in memory, no optimization
  -O1  fold/simplify + peephole
  -O2  + strength reduction and inlining          (the paper's default)
  -O3  + loop unrolling
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import CompileError
from ..minic import analyze, parse
from ..minic.ast import TranslationUnit
from ..minic.sema import SemanticAnalyzer
from ..wasm import Module, encode_module, validate_module
from . import midend
from .libc import LIBC_SOURCE
from .peephole import peephole_module
from .wasmgen import CodeGenerator

DEFAULT_OPT_LEVEL = 2


@dataclass
class CompileResult:
    """Everything the harness wants to know about one compile."""

    wasm_bytes: bytes
    module: Module
    unit: TranslationUnit
    analyzer: SemanticAnalyzer
    opt_level: int
    midend_stats: Dict[str, int] = field(default_factory=dict)
    peephole_removed: int = 0

    @property
    def binary_size(self) -> int:
        return len(self.wasm_bytes)

    @property
    def instruction_count(self) -> int:
        return self.module.body_size()

    @property
    def function_count(self) -> int:
        return len(self.module.functions)


def compile_source(source: str, opt_level: int = DEFAULT_OPT_LEVEL,
                   defines: Optional[Dict[str, str]] = None,
                   include_libc: bool = True,
                   entry: str = "main") -> CompileResult:
    """Compile MiniC source text to a WebAssembly binary."""
    if not 0 <= opt_level <= 3:
        raise CompileError(f"invalid optimization level -O{opt_level}")
    full_source = (LIBC_SOURCE + "\n" + source) if include_libc else source
    all_defines = {"TARGET_NATIVE": "0"}
    all_defines.update(defines or {})
    unit = parse(full_source, all_defines)
    analyzer = analyze(unit, force_locals_to_memory=(opt_level == 0))
    midend_stats = midend.optimize(unit, opt_level)
    module = CodeGenerator(unit, analyzer, entry).generate()
    removed = peephole_module(module) if opt_level >= 1 else 0
    validate_module(module)
    wasm_bytes = encode_module(module)
    return CompileResult(wasm_bytes=wasm_bytes, module=module, unit=unit,
                         analyzer=analyzer, opt_level=opt_level,
                         midend_stats=midend_stats,
                         peephole_removed=removed)
