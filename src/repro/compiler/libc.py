'''The MiniC standard library, written in MiniC itself.

Plays the role of wasi-libc + musl's libm in the paper's toolchain: it is
concatenated in front of every benchmark source and compiled together with
it (the code generator's reachability pass then keeps only what the
program uses, so module sizes stay honest).

Contents: the WASI extern declarations, a free-list malloc on top of
``memory.grow``, mem*/str* routines, buffered stdout with typed print
helpers (MiniC has no varargs, so no printf), file I/O wrappers over
WASI, a deterministic LCG ``rand``, ``qsort`` (exercising function
pointers / ``call_indirect``), and a polynomial libm (exp, log, pow,
sin, cos, tan, atan, atan2, fmod, ...) in the style of musl.
'''

LIBC_WASI_DECLS = r"""
extern int __wasi_fd_write(int fd, int iovs, int iovs_len, int nwritten);
extern int __wasi_fd_read(int fd, int iovs, int iovs_len, int nread);
extern int __wasi_fd_close(int fd);
extern int __wasi_fd_seek(int fd, long offset, int whence, int newoffset);
extern int __wasi_path_open(int dirfd, int dirflags, int path_ptr,
                            int path_len, int oflags, long rights_base,
                            long rights_inherit, int fdflags,
                            int opened_fd_ptr);
extern int __wasi_fd_pread(int fd, int iovs, int iovs_len, long offset,
                           int nread);
extern int __wasi_fd_pwrite(int fd, int iovs, int iovs_len, long offset,
                            int nwritten);
extern int __wasi_fd_fdstat_get(int fd, int stat_ptr);
extern int __wasi_fd_readdir(int fd, int buf, int buf_len, long cookie,
                             int bufused);
extern int __wasi_path_filestat_get(int dirfd, int flags, int path_ptr,
                                    int path_len, int stat_ptr);
extern int __wasi_path_unlink_file(int dirfd, int path_ptr, int path_len);
extern int __wasi_path_rename(int old_dirfd, int old_ptr, int old_len,
                              int new_dirfd, int new_ptr, int new_len);
extern int __wasi_args_sizes_get(int argc_ptr, int buf_size_ptr);
extern int __wasi_args_get(int argv_ptr, int argv_buf);
extern int __wasi_environ_sizes_get(int count_ptr, int buf_size_ptr);
extern int __wasi_environ_get(int environ_ptr, int environ_buf);
extern int __wasi_clock_time_get(int clock_id, long precision, int time_ptr);
extern int __wasi_random_get(int buf, int buf_len);
extern void __wasi_proc_exit(int code);
"""

LIBC_MEMORY = r"""
/* ---- heap: first-fit free list over memory.grow ---------------------- */

int __heap_ptr = 0;
int __heap_end = 0;
int __free_list = 0;
int __malloc_recycled = 0;

void __libc_init(void) {
    __heap_ptr = __builtin_heap_base();
    __heap_end = __builtin_memory_size() * 65536;
    __free_list = 0;
}

static int __heap_expand(int need) {
    int pages = (need + 65535) / 65536 + 1;
    int got = __builtin_memory_grow(pages);
    if (got < 0) {
        return 0;
    }
    __heap_end = __builtin_memory_size() * 65536;
    return 1;
}

void *malloc(unsigned int size) {
    int *prev;
    int *block;
    int need;
    int bsize;
    if (size == 0) {
        size = 1;
    }
    need = (int)((size + 7u) & ~7u) + 8;
    /* first-fit search of the free list */
    prev = (int *)0;
    block = (int *)__free_list;
    while (block) {
        bsize = block[0];
        if (bsize >= need) {
            if (bsize - need >= 16) {
                /* split */
                int *rest = (int *)((char *)block + need);
                rest[0] = bsize - need;
                rest[1] = block[1];
                block[0] = need;
                if (prev) {
                    prev[1] = (int)rest;
                } else {
                    __free_list = (int)rest;
                }
            } else {
                if (prev) {
                    prev[1] = block[1];
                } else {
                    __free_list = block[1];
                }
            }
            __malloc_recycled = 1;
            return (void *)((char *)block + 8);
        }
        prev = block;
        block = (int *)block[1];
    }
    /* bump allocation */
    if (__heap_ptr + need > __heap_end) {
        if (!__heap_expand(__heap_ptr + need - __heap_end)) {
            return (void *)0;
        }
    }
    block = (int *)__heap_ptr;
    block[0] = need;
    __heap_ptr = __heap_ptr + need;
    __malloc_recycled = 0;
    return (void *)((char *)block + 8);
}

void free(void *ptr) {
    int *block;
    if (!ptr) {
        return;
    }
    block = (int *)((char *)ptr - 8);
    block[1] = __free_list;
    __free_list = (int)block;
}

void *memset(void *dst, int value, unsigned int n) {
    char *d = (char *)dst;
    unsigned int i = 0;
    long v8;
    unsigned char b = (unsigned char)value;
    /* 8-byte-wide fill for aligned bulk */
    v8 = (long)b | ((long)b << 8) | ((long)b << 16) | ((long)b << 24);
    v8 = v8 | (v8 << 32);
    while ((((int)d + (int)i) & 7) && i < n) {
        d[i] = (char)value;
        i++;
    }
    while (i + 8 <= n) {
        *(long *)(d + i) = v8;
        i += 8;
    }
    while (i < n) {
        d[i] = (char)value;
        i++;
    }
    return dst;
}

void *calloc(unsigned int count, unsigned int size) {
    unsigned int total = count * size;
    void *p = malloc(total);
    if (!p) {
        return p;
    }
    if (__malloc_recycled) {
        /* Recycled heap really is dirty: both targets must clear it. */
        memset(p, 0, total);
    } else if (TARGET_NATIVE) {
        /* Fresh native pages are already demand-zero from the kernel,
           so (like glibc's mmap-backed calloc) there is no userspace
           clear — but the allocator's first touch faults in every page,
           making the whole block resident.  Wasm linear memory stays
           lazily grown.  This is the asymmetry behind the paper's
           whitedb observation that Wasm runtimes can show *less*
           resident memory than native. */
        char *d = (char *)p;
        unsigned int off = 0;
        while (off < total) {
            d[off] = 0;
            off += 4096u;
        }
    }
    return p;
}

void *memcpy(void *dst, void *src, unsigned int n) {
    char *d = (char *)dst;
    char *s = (char *)src;
    unsigned int i = 0;
    if ((((int)d | (int)s) & 7) == 0) {
        while (i + 8 <= n) {
            *(long *)(d + i) = *(long *)(s + i);
            i += 8;
        }
    }
    while (i < n) {
        d[i] = s[i];
        i++;
    }
    return dst;
}

void *memmove(void *dst, void *src, unsigned int n) {
    char *d = (char *)dst;
    char *s = (char *)src;
    unsigned int i;
    if ((unsigned int)d < (unsigned int)s) {
        return memcpy(dst, src, n);
    }
    i = n;
    while (i > 0) {
        i--;
        d[i] = s[i];
    }
    return dst;
}

int memcmp(void *a, void *b, unsigned int n) {
    unsigned char *pa = (unsigned char *)a;
    unsigned char *pb = (unsigned char *)b;
    unsigned int i = 0;
    while (i < n) {
        if (pa[i] != pb[i]) {
            return (int)pa[i] - (int)pb[i];
        }
        i++;
    }
    return 0;
}
"""

LIBC_STRING = r"""
unsigned int strlen(char *s) {
    unsigned int n = 0;
    while (s[n]) {
        n++;
    }
    return n;
}

int strcmp(char *a, char *b) {
    unsigned int i = 0;
    while (a[i] && a[i] == b[i]) {
        i++;
    }
    return (int)(unsigned char)a[i] - (int)(unsigned char)b[i];
}

int strncmp(char *a, char *b, unsigned int n) {
    unsigned int i = 0;
    if (n == 0) {
        return 0;
    }
    while (i + 1 < n && a[i] && a[i] == b[i]) {
        i++;
    }
    return (int)(unsigned char)a[i] - (int)(unsigned char)b[i];
}

char *strcpy(char *dst, char *src) {
    unsigned int i = 0;
    while (src[i]) {
        dst[i] = src[i];
        i++;
    }
    dst[i] = 0;
    return dst;
}

char *strncpy(char *dst, char *src, unsigned int n) {
    unsigned int i = 0;
    while (i < n && src[i]) {
        dst[i] = src[i];
        i++;
    }
    while (i < n) {
        dst[i] = 0;
        i++;
    }
    return dst;
}

char *strcat(char *dst, char *src) {
    strcpy(dst + strlen(dst), src);
    return dst;
}

char *strchr(char *s, int c) {
    while (*s) {
        if (*s == (char)c) {
            return s;
        }
        s++;
    }
    if (c == 0) {
        return s;
    }
    return (char *)0;
}

int atoi(char *s) {
    int sign = 1;
    int value = 0;
    while (*s == ' ' || *s == 9) {
        s++;
    }
    if (*s == '-') {
        sign = -1;
        s++;
    } else if (*s == '+') {
        s++;
    }
    while (*s >= '0' && *s <= '9') {
        value = value * 10 + (*s - '0');
        s++;
    }
    return sign * value;
}
"""

LIBC_STDIO = r"""
/* ---- buffered stdout + typed print helpers --------------------------- */

char __stdout_buf[1024];
int __stdout_len = 0;
int __iov_scratch[4];

static void __fd_write_all(int fd, char *data, int len) {
    __iov_scratch[0] = (int)data;
    __iov_scratch[1] = len;
    __wasi_fd_write(fd, (int)__iov_scratch, 1, (int)&__iov_scratch[2]);
}

void fflush_stdout(void) {
    if (__stdout_len > 0) {
        __fd_write_all(1, __stdout_buf, __stdout_len);
        __stdout_len = 0;
    }
}

void __libc_shutdown(void) {
    fflush_stdout();
}

int putchar(int c) {
    __stdout_buf[__stdout_len] = (char)c;
    __stdout_len++;
    if (__stdout_len == 1024) {
        fflush_stdout();
    }
    return c;
}

void print_s(char *s) {
    while (*s) {
        putchar(*s);
        s++;
    }
}

void print_nl(void) {
    putchar(10);
}

int puts(char *s) {
    print_s(s);
    print_nl();
    return 0;
}

void print_l(long value) {
    char digits[24];
    int n = 0;
    unsigned long u;
    if (value < 0) {
        putchar('-');
        u = (unsigned long)(-value);
    } else {
        u = (unsigned long)value;
    }
    if (u == 0) {
        putchar('0');
        return;
    }
    while (u > 0u) {
        digits[n] = (char)('0' + (int)(u % 10u));
        u = u / 10u;
        n++;
    }
    while (n > 0) {
        n--;
        putchar(digits[n]);
    }
}

void print_i(int value) {
    print_l((long)value);
}

void print_u(unsigned int value) {
    print_l((long)value);
}

void print_x(unsigned int value) {
    char digits[12];
    int n = 0;
    if (value == 0) {
        putchar('0');
        return;
    }
    while (value > 0u) {
        int d = (int)(value & 15u);
        if (d < 10) {
            digits[n] = (char)('0' + d);
        } else {
            digits[n] = (char)('a' + d - 10);
        }
        value = value >> 4;
        n++;
    }
    while (n > 0) {
        n--;
        putchar(digits[n]);
    }
}

void print_lx(unsigned long value) {
    char digits[20];
    int n = 0;
    if (value == 0ul) {
        putchar('0');
        return;
    }
    while (value > 0ul) {
        int d = (int)(value & 15ul);
        if (d < 10) {
            digits[n] = (char)('0' + d);
        } else {
            digits[n] = (char)('a' + d - 10);
        }
        value = value >> 4;
        n++;
    }
    while (n > 0) {
        n--;
        putchar(digits[n]);
    }
}

/* prints with 6 decimal places, enough for stable checksums */
void print_f(double value) {
    long ip;
    double frac;
    int i;
    if (value != value) {
        print_s("nan");
        return;
    }
    if (value < 0.0) {
        putchar('-');
        value = -value;
    }
    if (value > 9.0e15) {
        print_s("big");
        return;
    }
    ip = (long)value;
    print_l(ip);
    putchar('.');
    frac = value - (double)ip;
    for (i = 0; i < 6; i++) {
        int digit;
        frac = frac * 10.0;
        digit = (int)frac;
        putchar('0' + digit);
        frac = frac - (double)digit;
    }
}

void exit(int code) {
    __libc_shutdown();
    __wasi_proc_exit(code);
}

/* ---- file I/O over WASI ------------------------------------------------- */

int open_read(char *path) {
    int fd_out[1];
    int err = __wasi_path_open(3, 0, (int)path, (int)strlen(path),
                               0, 0l, 0l, 0, (int)fd_out);
    if (err != 0) {
        return -1;
    }
    return fd_out[0];
}

int open_write(char *path) {
    int fd_out[1];
    /* O_CREAT | O_TRUNC */
    int err = __wasi_path_open(3, 0, (int)path, (int)strlen(path),
                               1 | 8, 0l, 0l, 0, (int)fd_out);
    if (err != 0) {
        return -1;
    }
    return fd_out[0];
}

int read_bytes(int fd, char *buf, int len) {
    int iov[3];
    iov[0] = (int)buf;
    iov[1] = len;
    if (__wasi_fd_read(fd, (int)iov, 1, (int)&iov[2]) != 0) {
        return -1;
    }
    return iov[2];
}

int write_bytes(int fd, char *buf, int len) {
    int iov[3];
    iov[0] = (int)buf;
    iov[1] = len;
    if (__wasi_fd_write(fd, (int)iov, 1, (int)&iov[2]) != 0) {
        return -1;
    }
    return iov[2];
}

int close_fd(int fd) {
    return __wasi_fd_close(fd);
}

long seek_fd(int fd, long offset, int whence) {
    long out[1];
    if (__wasi_fd_seek(fd, offset, whence, (int)out) != 0) {
        return -1l;
    }
    return out[0];
}

long time_ns(void) {
    long out[1];
    __wasi_clock_time_get(1, 0l, (int)out);
    return out[0];
}

int open_dir(char *path) {
    int fd_out[1];
    /* O_DIRECTORY */
    int err = __wasi_path_open(3, 0, (int)path, (int)strlen(path),
                               2, 0l, 0l, 0, (int)fd_out);
    if (err != 0) {
        return -1;
    }
    return fd_out[0];
}

int read_dir(int fd, char *buf, int len, long cookie) {
    int used[1];
    if (__wasi_fd_readdir(fd, (int)buf, len, cookie, (int)used) != 0) {
        return -1;
    }
    return used[0];
}

int pread_bytes(int fd, char *buf, int len, long offset) {
    int iov[3];
    iov[0] = (int)buf;
    iov[1] = len;
    if (__wasi_fd_pread(fd, (int)iov, 1, offset, (int)&iov[2]) != 0) {
        return -1;
    }
    return iov[2];
}

int pwrite_bytes(int fd, char *buf, int len, long offset) {
    int iov[3];
    iov[0] = (int)buf;
    iov[1] = len;
    if (__wasi_fd_pwrite(fd, (int)iov, 1, offset, (int)&iov[2]) != 0) {
        return -1;
    }
    return iov[2];
}

/* filestat: size lives at byte 32, filetype at byte 16 (preview1). */
long stat_size(char *path) {
    long st[8];
    if (__wasi_path_filestat_get(3, 0, (int)path, (int)strlen(path),
                                 (int)st) != 0) {
        return -1l;
    }
    return st[4];
}

int stat_type(char *path) {
    char st[64];
    if (__wasi_path_filestat_get(3, 0, (int)path, (int)strlen(path),
                                 (int)st) != 0) {
        return -1;
    }
    return (int)st[16];
}

int fd_type(int fd) {
    char st[24];
    if (__wasi_fd_fdstat_get(fd, (int)st) != 0) {
        return -1;
    }
    return (int)st[0];
}

int unlink_file(char *path) {
    return __wasi_path_unlink_file(3, (int)path, (int)strlen(path));
}

int rename_file(char *old_path, char *new_path) {
    return __wasi_path_rename(3, (int)old_path, (int)strlen(old_path),
                              3, (int)new_path, (int)strlen(new_path));
}

int random_bytes(char *buf, int len) {
    if (__wasi_random_get((int)buf, len) != 0) {
        return -1;
    }
    return len;
}
"""

LIBC_STDLIB = r"""
int __rand_seed = 12345;

void srand(int seed) {
    __rand_seed = seed;
}

int rand(void) {
    __rand_seed = __rand_seed * 1103515245 + 12345;
    return (__rand_seed >> 16) & 32767;
}

int abs(int v) {
    if (v < 0) {
        return -v;
    }
    return v;
}

long labs(long v) {
    if (v < 0l) {
        return -v;
    }
    return v;
}

/* ---- qsort: median-of-three quicksort with insertion-sort leaves.
   Exercises indirect calls through the comparison function pointer. */

char __qsort_tmp[256];

static void __qswap(char *a, char *b, unsigned int size) {
    memcpy(__qsort_tmp, a, size);
    memcpy(a, b, size);
    memcpy(b, __qsort_tmp, size);
}

static void __qsort_range(char *base, int lo, int hi, unsigned int size,
                          int (*cmp)(void *, void *)) {
    while (lo < hi) {
        if (hi - lo < 8) {
            int i;
            for (i = lo + 1; i <= hi; i++) {
                int j = i;
                while (j > lo &&
                       cmp((void *)(base + j * size),
                           (void *)(base + (j - 1) * size)) < 0) {
                    __qswap(base + j * size, base + (j - 1) * size, size);
                    j--;
                }
            }
            return;
        }
        {
            int mid = lo + (hi - lo) / 2;
            int i = lo;
            int j = hi;
            if (cmp((void *)(base + mid * size),
                    (void *)(base + lo * size)) < 0) {
                __qswap(base + mid * size, base + lo * size, size);
            }
            if (cmp((void *)(base + hi * size),
                    (void *)(base + lo * size)) < 0) {
                __qswap(base + hi * size, base + lo * size, size);
            }
            if (cmp((void *)(base + hi * size),
                    (void *)(base + mid * size)) < 0) {
                __qswap(base + hi * size, base + mid * size, size);
            }
            __qswap(base + mid * size, base + (lo + 1) * size, size);
            i = lo + 1;
            while (1) {
                i++;
                while (i <= hi &&
                       cmp((void *)(base + i * size),
                           (void *)(base + (lo + 1) * size)) < 0) {
                    i++;
                }
                j--;
                while (cmp((void *)(base + (lo + 1) * size),
                           (void *)(base + j * size)) < 0) {
                    j--;
                }
                if (i > j) {
                    break;
                }
                __qswap(base + i * size, base + j * size, size);
            }
            __qswap(base + (lo + 1) * size, base + j * size, size);
            if (j - lo < hi - j) {
                __qsort_range(base, lo, j - 1, size, cmp);
                lo = j + 1;
            } else {
                __qsort_range(base, j + 1, hi, size, cmp);
                hi = j - 1;
            }
        }
    }
}

void qsort(void *base, unsigned int count, unsigned int size,
           int (*cmp)(void *, void *)) {
    if (count > 1u) {
        __qsort_range((char *)base, 0, (int)count - 1, size, cmp);
    }
}
"""

LIBC_MATH = r"""
/* ---- libm: polynomial implementations in the style of musl ------------- */

double sqrt(double x) {
    return __builtin_sqrt(x);
}

double fabs(double x) {
    return __builtin_fabs(x);
}

double floor(double x) {
    return __builtin_floor(x);
}

double ceil(double x) {
    return __builtin_ceil(x);
}

double trunc(double x) {
    return __builtin_trunc(x);
}

double fmod(double a, double b) {
    if (b == 0.0) {
        return 0.0;
    }
    return a - __builtin_trunc(a / b) * b;
}

static double __ldexp_pos(double m, int k) {
    while (k >= 30) {
        m = m * 1073741824.0;
        k -= 30;
    }
    while (k > 0) {
        m = m * 2.0;
        k--;
    }
    return m;
}

static double __ldexp_neg(double m, int k) {
    while (k >= 30) {
        m = m / 1073741824.0;
        k -= 30;
    }
    while (k > 0) {
        m = m / 2.0;
        k--;
    }
    return m;
}

double ldexp(double m, int k) {
    if (k >= 0) {
        return __ldexp_pos(m, k);
    }
    return __ldexp_neg(m, -k);
}

double exp(double x) {
    double r;
    double r2;
    double p;
    int k;
    if (x > 709.0) {
        return 8.9e307 * 8.9e307; /* overflow to inf */
    }
    if (x < -745.0) {
        return 0.0;
    }
    /* x = k*ln2 + r,  |r| <= ln2/2 */
    k = (int)__builtin_nearest(x * 1.4426950408889634);
    r = x - (double)k * 0.6931471805599453;
    /* degree-10 Taylor of e^r (|r| < 0.35 converges fast) */
    r2 = r * r;
    p = 1.0 + r + r2 * (0.5 + r * 0.16666666666666666
        + r2 * (0.041666666666666664 + r * 0.008333333333333333
        + r2 * (0.001388888888888889 + r * 0.0001984126984126984
        + r2 * (0.0000248015873015873 + r * 0.0000027557319223985893))));
    return ldexp(p, k);
}

double log(double x) {
    int k = 0;
    double t;
    double t2;
    double series;
    if (x <= 0.0) {
        return -8.9e307 * 8.9e307; /* -inf for log(0), nan-ish otherwise */
    }
    /* normalize x into [0.75, 1.5) */
    while (x >= 1.5) {
        x = x * 0.5;
        k++;
    }
    while (x < 0.75) {
        x = x * 2.0;
        k--;
    }
    /* ln(x) = 2 atanh((x-1)/(x+1)) */
    t = (x - 1.0) / (x + 1.0);
    t2 = t * t;
    series = t * (2.0 + t2 * (0.6666666666666666 + t2 * (0.4
        + t2 * (0.2857142857142857 + t2 * (0.2222222222222222
        + t2 * (0.18181818181818182 + t2 * 0.15384615384615385))))));
    return series + (double)k * 0.6931471805599453;
}

double log2(double x) {
    return log(x) * 1.4426950408889634;
}

double log10(double x) {
    return log(x) * 0.4342944819032518;
}

double pow(double base, double exponent) {
    int ie;
    if (exponent == 0.0) {
        return 1.0;
    }
    if (base == 0.0) {
        return 0.0;
    }
    ie = (int)exponent;
    if ((double)ie == exponent && ie > -64 && ie < 64) {
        /* integer fast path: exponentiation by squaring */
        double result = 1.0;
        double acc = base;
        int n = ie;
        if (n < 0) {
            n = -n;
        }
        while (n) {
            if (n & 1) {
                result = result * acc;
            }
            acc = acc * acc;
            n = n >> 1;
        }
        if (ie < 0) {
            return 1.0 / result;
        }
        return result;
    }
    if (base < 0.0) {
        return 0.0; /* domain error -> 0 (benchmarks avoid this) */
    }
    return exp(exponent * log(base));
}

static double __sin_poly(double r) {
    /* Taylor about 0, |r| <= pi/2 + eps */
    double r2 = r * r;
    return r * (1.0 + r2 * (-0.16666666666666666
        + r2 * (0.008333333333333333 + r2 * (-0.0001984126984126984
        + r2 * (0.0000027557319223985893
        + r2 * (-0.000000025052108385441720
        + r2 * 0.00000000016059043836821613))))));
}

double sin(double x) {
    double two_pi = 6.283185307179586;
    double k;
    /* reduce to [-pi, pi] */
    k = __builtin_nearest(x / two_pi);
    x = x - k * two_pi;
    if (x > 3.141592653589793) {
        x = x - two_pi;
    }
    if (x < -3.141592653589793) {
        x = x + two_pi;
    }
    /* fold into [-pi/2, pi/2] */
    if (x > 1.5707963267948966) {
        x = 3.141592653589793 - x;
    } else if (x < -1.5707963267948966) {
        x = -3.141592653589793 - x;
    }
    return __sin_poly(x);
}

double cos(double x) {
    return sin(x + 1.5707963267948966);
}

double tan(double x) {
    double c = cos(x);
    if (c == 0.0) {
        return 8.9e307;
    }
    return sin(x) / c;
}

static double __atan_small(double x) {
    /* Taylor for |x| < ~0.27 after three half-angle reductions */
    double x2 = x * x;
    return x * (1.0 + x2 * (-0.3333333333333333 + x2 * (0.2
        + x2 * (-0.14285714285714285 + x2 * (0.1111111111111111
        + x2 * (-0.09090909090909091 + x2 * 0.07692307692307693))))));
}

double atan(double x) {
    double sign = 1.0;
    int i;
    if (x < 0.0) {
        sign = -1.0;
        x = -x;
    }
    /* atan(x) = 2 atan(x / (1 + sqrt(1 + x^2))), applied 3 times */
    for (i = 0; i < 3; i++) {
        x = x / (1.0 + __builtin_sqrt(1.0 + x * x));
    }
    return sign * 8.0 * __atan_small(x);
}

double atan2(double y, double x) {
    double pi = 3.141592653589793;
    if (x > 0.0) {
        return atan(y / x);
    }
    if (x < 0.0) {
        if (y >= 0.0) {
            return atan(y / x) + pi;
        }
        return atan(y / x) - pi;
    }
    if (y > 0.0) {
        return pi / 2.0;
    }
    if (y < 0.0) {
        return -(pi / 2.0);
    }
    return 0.0;
}

double asin(double x) {
    if (x >= 1.0) {
        return 1.5707963267948966;
    }
    if (x <= -1.0) {
        return -1.5707963267948966;
    }
    return atan(x / __builtin_sqrt(1.0 - x * x));
}

double acos(double x) {
    return 1.5707963267948966 - asin(x);
}

double tanh(double x) {
    double e2;
    if (x > 20.0) {
        return 1.0;
    }
    if (x < -20.0) {
        return -1.0;
    }
    e2 = exp(2.0 * x);
    return (e2 - 1.0) / (e2 + 1.0);
}

double sigmoid(double x) {
    return 1.0 / (1.0 + exp(-x));
}

double cbrt(double x) {
    double guess;
    double sign = 1.0;
    int i;
    if (x == 0.0) {
        return 0.0;
    }
    if (x < 0.0) {
        sign = -1.0;
        x = -x;
    }
    guess = exp(log(x) / 3.0);
    /* two Newton steps to polish */
    for (i = 0; i < 2; i++) {
        guess = (2.0 * guess + x / (guess * guess)) / 3.0;
    }
    return sign * guess;
}
"""

LIBC_SOURCE = (LIBC_WASI_DECLS + LIBC_MEMORY + LIBC_STRING + LIBC_STDIO +
               LIBC_STDLIB + LIBC_MATH)
