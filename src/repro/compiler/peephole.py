"""Wasm-level peephole optimization (run at -O1 and above).

Cleans the local patterns a stack-code generator leaves behind.  Because
Wasm branches target *labels* rather than byte offsets, deleting or
replacing non-control instructions never invalidates control flow, which
keeps these rewrites trivially sound.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..isa import ops as mops
from ..wasm import Module
from ..wasm import opcodes as op
from ..wasm.module import Instr

# Foldable (const, const) -> const binaries, with exact target semantics.
_FOLD2 = {
    op.I32_ADD: lambda a, b: (a + b) & 0xFFFFFFFF,
    op.I32_SUB: lambda a, b: (a - b) & 0xFFFFFFFF,
    op.I32_MUL: lambda a, b: (a * b) & 0xFFFFFFFF,
    op.I32_AND: lambda a, b: a & b,
    op.I32_OR: lambda a, b: a | b,
    op.I32_XOR: lambda a, b: a ^ b,
    op.I32_SHL: lambda a, b: (a << (b & 31)) & 0xFFFFFFFF,
    op.I64_ADD: lambda a, b: (a + b) & 0xFFFFFFFFFFFFFFFF,
    op.I64_SUB: lambda a, b: (a - b) & 0xFFFFFFFFFFFFFFFF,
    op.I64_MUL: lambda a, b: (a * b) & 0xFFFFFFFFFFFFFFFF,
}

_IDENTITY_RIGHT_ZERO = frozenset((op.I32_ADD, op.I32_SUB, op.I32_OR,
                                  op.I32_XOR, op.I32_SHL, op.I32_SHR_S,
                                  op.I32_SHR_U,
                                  op.I64_ADD, op.I64_SUB, op.I64_OR,
                                  op.I64_XOR, op.I64_SHL, op.I64_SHR_S,
                                  op.I64_SHR_U))

_PURE_PRODUCERS = frozenset((op.I32_CONST, op.I64_CONST, op.F32_CONST,
                             op.F64_CONST, op.LOCAL_GET, op.GLOBAL_GET))


def _u32(v: int) -> int:
    return v & 0xFFFFFFFF


def optimize_body(body: List[Instr]) -> List[Instr]:
    """One fixpoint pass of local rewrites over a flat body."""
    changed = True
    while changed:
        changed = False
        out: List[Instr] = []
        i = 0
        n = len(body)
        while i < n:
            ins = body[i]
            o = ins[0]
            nxt = body[i + 1] if i + 1 < n else None
            nxt2 = body[i + 2] if i + 2 < n else None

            # const const binop  ->  const
            if nxt2 is not None and o in (op.I32_CONST, op.I64_CONST) \
                    and nxt is not None and nxt[0] == o \
                    and nxt2[0] in _FOLD2:
                wide = o == op.I64_CONST
                mask = 0xFFFFFFFFFFFFFFFF if wide else 0xFFFFFFFF
                if (nxt2[0] >= op.I64_ADD) == wide:
                    folded = _FOLD2[nxt2[0]](ins[1] & mask, nxt[1] & mask)
                    if folded >> (63 if wide else 31):
                        folded -= 1 << (64 if wide else 32)
                    out.append((o, folded))
                    i += 3
                    changed = True
                    continue

            # local.set x ; local.get x  ->  local.tee x
            if o == op.LOCAL_SET and nxt is not None \
                    and nxt[0] == op.LOCAL_GET and nxt[1] == ins[1]:
                out.append((op.LOCAL_TEE, ins[1]))
                i += 2
                changed = True
                continue

            # local.tee x ; drop  ->  local.set x
            if o == op.LOCAL_TEE and nxt is not None and nxt[0] == op.DROP:
                out.append((op.LOCAL_SET, ins[1]))
                i += 2
                changed = True
                continue

            # pure producer ; drop  ->  (nothing)
            if o in _PURE_PRODUCERS and nxt is not None \
                    and nxt[0] == op.DROP:
                i += 2
                changed = True
                continue

            # x ; const 0 ; add/sub/or/xor/shift  ->  x
            if nxt is not None and o in (op.I32_CONST, op.I64_CONST) \
                    and ins[1] == 0 and nxt[0] in _IDENTITY_RIGHT_ZERO:
                if (o == op.I64_CONST) == (nxt[0] >= op.I64_ADD):
                    i += 2
                    changed = True
                    continue

            # const 1 ; mul  ->  (nothing)
            if nxt is not None and ins[1:] == (1,) \
                    and ((o == op.I32_CONST and nxt[0] == op.I32_MUL) or
                         (o == op.I64_CONST and nxt[0] == op.I64_MUL)):
                i += 2
                changed = True
                continue

            out.append(ins)
            i += 1
        body = out
    return body


def peephole_module(module: Module) -> int:
    """Optimize every function body in place; returns instructions removed."""
    removed = 0
    for func in module.functions:
        before = len(func.body)
        func.body = optimize_body(func.body)
        removed += before - len(func.body)
    return removed
