"""Midend optimizer: the -O pipeline over the typed MiniC AST.

The optimization level controls which passes run, mirroring how a real
C compiler's ``-O`` flag gates its pipeline:

* **-O0** — nothing (and the driver additionally forces every local into
  memory, like clang -O0's allocas);
* **-O1** — constant folding, algebraic simplification, constant-branch
  folding;
* **-O2** — -O1 plus strength reduction (multiply/divide/modulo by
  powers of two become shifts/masks) and inlining of small
  single-expression functions;
* **-O3** — -O2 plus unrolling of small constant-trip-count loops.

All folds use the exact wrap-around semantics of the target (via the
shared tables in :mod:`repro.isa.ops`), so optimized and unoptimized
binaries always compute identical results — property-tested in the
suite.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional

from ..isa import ops as mops
from ..minic import ast
from ..minic.typesys import (CType, DOUBLE, FLOAT, INT, LONG, UINT, ULONG)

_M32 = 0xFFFFFFFF
_M64 = 0xFFFFFFFFFFFFFFFF


def _clone(node):
    """Structural copy of AST nodes that *shares* bindings and types.

    ``copy.deepcopy`` would duplicate the VarDecl objects that bindings
    point at, breaking the identity keys sema and codegen rely on.
    """
    if isinstance(node, list):
        return [_clone(x) for x in node]
    if not isinstance(node, (ast.Expr, ast.Stmt, ast.SwitchCase)):
        return node
    new = copy.copy(node)
    for name in ast.field_names(node.__class__):
        if name == "binding":
            continue
        value = getattr(node, name)
        if isinstance(value, (ast.Expr, ast.Stmt, list)):
            setattr(new, name, _clone(value))
    return new


def optimize(unit: ast.TranslationUnit, opt_level: int) -> Dict[str, int]:
    """Run the pipeline in place; returns per-pass change counts."""
    stats = {"const_fold": 0, "algebraic": 0, "branch_fold": 0,
             "strength": 0, "inline": 0, "unroll": 0}
    if opt_level <= 0:
        return stats
    inliner = _Inliner(unit) if opt_level >= 2 else None
    for func in unit.functions:
        if func.body is None:
            continue
        for _ in range(2 if opt_level >= 2 else 1):
            if inliner is not None:
                stats["inline"] += inliner.run(func)
            folder = _Simplifier(opt_level)
            folder.visit_stmt(func.body)
            stats["const_fold"] += folder.folded
            stats["algebraic"] += folder.algebraic
            stats["strength"] += folder.strength
            stats["branch_fold"] += _fold_branches(func.body)
            if opt_level >= 3:
                stats["unroll"] += _Unroller().run(func)
    return stats


# ---------------------------------------------------------------------------
# Constant evaluation with target semantics
# ---------------------------------------------------------------------------


def _const_value(expr: ast.Expr):
    """Literal value, or None."""
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.FloatLit):
        return expr.value
    return None


def _make_literal(value, ctype: CType, line: int) -> ast.Expr:
    if ctype.is_float:
        lit: ast.Expr = ast.FloatLit(line=line, value=float(value))
    else:
        lit = ast.IntLit(line=line, value=int(value))
    lit.ctype = ctype
    return lit


def _wrap_int(value: int, ctype: CType) -> int:
    """Wrap to the type's width with the right signedness view."""
    if ctype.wasm_type == 0x7E:  # I64
        value &= _M64
        if not ctype.unsigned and value >> 63:
            value -= 1 << 64
        return value
    value &= _M32
    if not ctype.unsigned and value >> 31:
        value -= 1 << 32
    if ctype.kind == "char":
        value &= 0xFF
        if not ctype.unsigned and value >> 7:
            value -= 1 << 8
    elif ctype.kind == "short":
        value &= 0xFFFF
        if not ctype.unsigned and value >> 15:
            value -= 1 << 16
    return value


def _fold_binary(op: str, a, b, ctype: CType,
                 operand_type: CType) -> Optional[object]:
    """Evaluate ``a op b`` with target semantics; None if not foldable."""
    t = operand_type
    try:
        if t.is_float:
            result = {
                "+": lambda: a + b, "-": lambda: a - b, "*": lambda: a * b,
                "/": lambda: a / b if b else None,
                "==": lambda: int(a == b), "!=": lambda: int(a != b),
                "<": lambda: int(a < b), ">": lambda: int(a > b),
                "<=": lambda: int(a <= b), ">=": lambda: int(a >= b),
            }.get(op, lambda: None)()
            if result is not None and t == FLOAT and op in "+-*/":
                result = mops.f32round(result)
            return result
        ia, ib = int(a), int(b)
        if op in ("/", "%") and ib == 0:
            return None
        shift_mask = 63 if t.wasm_type == 0x7E else 31
        result = {
            "+": lambda: ia + ib, "-": lambda: ia - ib, "*": lambda: ia * ib,
            "/": lambda: _tdiv(ia, ib, t),
            "%": lambda: _tmod(ia, ib, t),
            "&": lambda: ia & ib, "|": lambda: ia | ib, "^": lambda: ia ^ ib,
            "<<": lambda: ia << (ib & shift_mask),
            ">>": lambda: _tshr(ia, ib & shift_mask, t),
            "==": lambda: int(ia == ib), "!=": lambda: int(ia != ib),
            "<": lambda: int(_uv(ia, t) < _uv(ib, t)) if t.unsigned
            else int(ia < ib),
            ">": lambda: int(_uv(ia, t) > _uv(ib, t)) if t.unsigned
            else int(ia > ib),
            "<=": lambda: int(_uv(ia, t) <= _uv(ib, t)) if t.unsigned
            else int(ia <= ib),
            ">=": lambda: int(_uv(ia, t) >= _uv(ib, t)) if t.unsigned
            else int(ia >= ib),
        }.get(op, lambda: None)()
        if result is None:
            return None
        if op in ("==", "!=", "<", ">", "<=", ">="):
            return result
        return _wrap_int(result, ctype)
    except (OverflowError, ZeroDivisionError):
        return None


def _uv(v: int, t: CType) -> int:
    mask = _M64 if t.wasm_type == 0x7E else _M32
    return v & mask


def _tdiv(a: int, b: int, t: CType) -> int:
    if t.unsigned:
        return _uv(a, t) // _uv(b, t)
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _tmod(a: int, b: int, t: CType) -> int:
    if t.unsigned:
        return _uv(a, t) % _uv(b, t)
    return a - b * _tdiv(a, b, t)


def _tshr(a: int, n: int, t: CType) -> int:
    if t.unsigned:
        return _uv(a, t) >> n
    return a >> n


# ---------------------------------------------------------------------------
# Expression simplification (fold + algebraic + strength reduction)
# ---------------------------------------------------------------------------


class _Simplifier:
    def __init__(self, opt_level: int):
        self.opt_level = opt_level
        self.folded = 0
        self.algebraic = 0
        self.strength = 0

    # -- tree walk -----------------------------------------------------

    def visit_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            for s in stmt.statements:
                self.visit_stmt(s)
        elif isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                stmt.init = self.visit(stmt.init)
            if stmt.init_list is not None:
                stmt.init_list = [self.visit(e) for e in stmt.init_list]
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                stmt.expr = self.visit(stmt.expr)
        elif isinstance(stmt, ast.If):
            stmt.cond = self.visit(stmt.cond)
            self.visit_stmt(stmt.then)
            if stmt.other is not None:
                self.visit_stmt(stmt.other)
        elif isinstance(stmt, ast.While):
            stmt.cond = self.visit(stmt.cond)
            self.visit_stmt(stmt.body)
        elif isinstance(stmt, ast.DoWhile):
            self.visit_stmt(stmt.body)
            stmt.cond = self.visit(stmt.cond)
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                self.visit_stmt(stmt.init)
            if stmt.cond is not None:
                stmt.cond = self.visit(stmt.cond)
            if stmt.step is not None:
                stmt.step = self.visit(stmt.step)
            self.visit_stmt(stmt.body)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                stmt.value = self.visit(stmt.value)
        elif isinstance(stmt, ast.Switch):
            stmt.scrutinee = self.visit(stmt.scrutinee)
            for case in stmt.cases:
                for s in case.body:
                    self.visit_stmt(s)

    def visit(self, expr: ast.Expr) -> ast.Expr:
        # Recurse into children first.
        scalars, lists = ast.expr_child_fields(expr.__class__)
        for name in scalars:
            child = getattr(expr, name)
            if child is not None:
                setattr(expr, name, self.visit(child))
        for name in lists:
            child = getattr(expr, name)
            if child:
                setattr(expr, name, [self.visit(c) for c in child])
        return self._simplify(expr)

    # -- rules ---------------------------------------------------------

    def _simplify(self, expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, ast.Binary):
            return self._simplify_binary(expr)
        if isinstance(expr, ast.Unary):
            value = _const_value(expr.operand)
            if value is not None:
                self.folded += 1
                if expr.op == "-":
                    return _make_literal(_wrap_int(-int(value), expr.ctype)
                                         if not expr.ctype.is_float
                                         else -value, expr.ctype, expr.line)
                if expr.op == "~":
                    return _make_literal(_wrap_int(~int(value), expr.ctype),
                                         expr.ctype, expr.line)
                if expr.op == "!":
                    return _make_literal(int(not value), INT, expr.line)
                self.folded -= 1
        if isinstance(expr, ast.Cast):
            return self._simplify_cast(expr)
        if isinstance(expr, ast.Cond):
            value = _const_value(expr.cond)
            if value is not None:
                self.folded += 1
                return expr.then if value else expr.other
        return expr

    def _simplify_binary(self, expr: ast.Binary) -> ast.Expr:
        lv, rv = _const_value(expr.left), _const_value(expr.right)
        operand_type = expr.left.ctype if expr.op not in ("&&", "||") \
            else INT
        if lv is not None and rv is not None and \
                expr.op not in ("&&", "||"):
            result = _fold_binary(expr.op, lv, rv, expr.ctype, operand_type)
            if result is not None:
                self.folded += 1
                return _make_literal(result, expr.ctype, expr.line)
        if expr.op in ("&&", "||") and lv is not None:
            self.folded += 1
            if expr.op == "&&":
                if not lv:
                    return _make_literal(0, INT, expr.line)
                return self._truthify(expr.right)
            if lv:
                return _make_literal(1, INT, expr.line)
            return self._truthify(expr.right)

        t = expr.ctype
        # Algebraic identities (right-constant forms; safe because the
        # remaining operand is evaluated exactly once either way).
        if rv is not None and t.is_integer:
            r = int(rv)
            if expr.op in ("+", "-", "|", "^", "<<", ">>") and r == 0:
                self.algebraic += 1
                return expr.left
            if expr.op == "*" and r == 1:
                self.algebraic += 1
                return expr.left
            if expr.op == "/" and r == 1:
                self.algebraic += 1
                return expr.left
            if expr.op == "*" and r == 0 and _is_pure(expr.left):
                self.algebraic += 1
                return _make_literal(0, t, expr.line)
            if expr.op == "&" and r == 0 and _is_pure(expr.left):
                self.algebraic += 1
                return _make_literal(0, t, expr.line)
            # Strength reduction at -O2.
            if self.opt_level >= 2 and r > 1 and (r & (r - 1)) == 0:
                shift = r.bit_length() - 1
                if expr.op == "*":
                    self.strength += 1
                    expr.op = "<<"
                    # shift amount must match the operand's width
                    expr.right = _make_literal(shift, t, expr.line)
                    return expr
                if expr.op == "/" and t.unsigned:
                    self.strength += 1
                    expr.op = ">>"
                    expr.right = _make_literal(shift, t, expr.line)
                    return expr
                if expr.op == "%" and t.unsigned:
                    self.strength += 1
                    expr.op = "&"
                    expr.right = _make_literal(r - 1, t, expr.line)
                    return expr
        if lv is not None and t.is_integer and expr.op in ("+", "*") :
            l = int(lv)
            if (expr.op == "+" and l == 0) or (expr.op == "*" and l == 1):
                self.algebraic += 1
                return expr.right
        if rv is not None and t.is_float:
            if expr.op in ("+", "-") and rv == 0.0:
                self.algebraic += 1
                return expr.left
            if expr.op in ("*", "/") and rv == 1.0:
                self.algebraic += 1
                return expr.left
        return expr

    def _truthify(self, expr: ast.Expr) -> ast.Expr:
        """Turn an operand of &&/|| into an explicit truth value."""
        if isinstance(expr, ast.Binary) and expr.op in (
                "==", "!=", "<", ">", "<=", ">=", "&&", "||"):
            return expr
        ne = ast.Binary(line=expr.line, op="!=", left=expr,
                        right=_make_literal(0, expr.ctype, expr.line))
        ne.ctype = INT
        return ne

    def _simplify_cast(self, expr: ast.Cast) -> ast.Expr:
        value = _const_value(expr.operand)
        if value is None:
            # Collapse nested same-type casts.
            if isinstance(expr.operand, ast.Cast) and \
                    expr.operand.target_type == expr.target_type:
                return expr.operand
            return expr
        dst = expr.target_type
        if dst.is_float:
            self.folded += 1
            result = float(value)
            if dst == FLOAT:
                result = mops.f32round(result)
            return _make_literal(result, dst, expr.line)
        if dst.is_integer:
            if isinstance(value, float):
                # Folding float->int must match trunc-trap semantics; only
                # fold when in range.
                if dst.wasm_type == 0x7E:
                    lo, hi = (-2**63, 2**63 - 1)
                else:
                    lo, hi = (-2**31, 2**31 - 1)
                if not (lo <= value <= hi):
                    return expr
                value = int(value)
            self.folded += 1
            return _make_literal(_wrap_int(int(value), dst), dst, expr.line)
        return expr


def _is_pure(expr: ast.Expr) -> bool:
    """Conservatively: no calls, assignments, or loads through pointers."""
    if isinstance(expr, (ast.Call, ast.Assign, ast.IncDec, ast.Deref,
                         ast.Index)):
        return False
    for name in ast.field_names(expr.__class__):
        if name in ("ctype", "target_type", "binding"):
            continue
        child = getattr(expr, name)
        if isinstance(child, ast.Expr) and not _is_pure(child):
            return False
        if isinstance(child, list):
            for c in child:
                if isinstance(c, ast.Expr) and not _is_pure(c):
                    return False
    return True


# ---------------------------------------------------------------------------
# Constant-branch folding
# ---------------------------------------------------------------------------


def _fold_branches(block: ast.Stmt) -> int:
    """Replace if(const)/while(0) with the surviving branch, in place."""
    changed = 0

    def rewrite(stmt: ast.Stmt) -> Optional[ast.Stmt]:
        nonlocal changed
        if isinstance(stmt, ast.If):
            value = _const_value(stmt.cond)
            if value is not None:
                changed += 1
                survivor = stmt.then if value else stmt.other
                return walk(survivor) if survivor is not None \
                    else ast.Block(line=stmt.line)
            stmt.then = walk(stmt.then)
            if stmt.other is not None:
                stmt.other = walk(stmt.other)
            return stmt
        if isinstance(stmt, ast.While):
            value = _const_value(stmt.cond)
            if value is not None and not value:
                changed += 1
                return ast.Block(line=stmt.line)
            stmt.body = walk(stmt.body)
            return stmt
        if isinstance(stmt, ast.DoWhile):
            stmt.body = walk(stmt.body)
            return stmt
        if isinstance(stmt, ast.For):
            if stmt.init is not None:
                stmt.init = walk(stmt.init)
            stmt.body = walk(stmt.body)
            return stmt
        if isinstance(stmt, ast.Block):
            stmt.statements = [walk(s) for s in stmt.statements]
            return stmt
        if isinstance(stmt, ast.Switch):
            for case in stmt.cases:
                case.body = [walk(s) for s in case.body]
            return stmt
        return stmt

    def walk(stmt: ast.Stmt) -> ast.Stmt:
        return rewrite(stmt)

    walk(block)
    return changed


# ---------------------------------------------------------------------------
# Inlining (-O2): single-expression functions with simple arguments
# ---------------------------------------------------------------------------

_INLINE_MAX_NODES = 24


class _Inliner:
    def __init__(self, unit: ast.TranslationUnit):
        self.candidates: Dict[str, ast.FuncDef] = {}
        for func in unit.functions:
            if func.body is None or func.ret.is_void:
                continue
            body = func.body.statements
            if len(body) == 1 and isinstance(body[0], ast.Return) \
                    and body[0].value is not None \
                    and _node_count(body[0].value) <= _INLINE_MAX_NODES \
                    and not _references_memory_params(func):
                self.candidates[func.name] = func
        self.inlined = 0

    def run(self, func: ast.FuncDef) -> int:
        before = self.inlined
        self._rewrite_stmt(func.body, func)
        return self.inlined - before

    def _rewrite_stmt(self, stmt: ast.Stmt, host: ast.FuncDef) -> None:
        for name in ast.field_names(stmt.__class__):
            child = getattr(stmt, name)
            if isinstance(child, ast.Expr):
                setattr(stmt, name, self._rewrite_expr(child, host))
            elif isinstance(child, ast.Stmt):
                self._rewrite_stmt(child, host)
            elif isinstance(child, list):
                new_list = []
                for c in child:
                    if isinstance(c, ast.Expr):
                        new_list.append(self._rewrite_expr(c, host))
                    else:
                        if isinstance(c, ast.Stmt):
                            self._rewrite_stmt(c, host)
                        elif isinstance(c, ast.SwitchCase):
                            for s in c.body:
                                self._rewrite_stmt(s, host)
                        new_list.append(c)
                setattr(stmt, name, new_list)

    def _rewrite_expr(self, expr: ast.Expr, host: ast.FuncDef) -> ast.Expr:
        scalars, lists = ast.expr_child_fields(expr.__class__)
        for name in scalars:
            child = getattr(expr, name)
            if child is not None:
                setattr(expr, name, self._rewrite_expr(child, host))
        for name in lists:
            child = getattr(expr, name)
            if child:
                setattr(expr, name,
                        [self._rewrite_expr(c, host) for c in child])
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Ident) \
                and expr.func.binding and expr.func.binding[0] == "func":
            callee = self.candidates.get(expr.func.binding[1])
            if callee is not None and callee is not host:
                inlined = self._try_inline(callee, expr)
                if inlined is not None:
                    self.inlined += 1
                    return inlined
        return expr

    def _try_inline(self, callee: ast.FuncDef,
                    call: ast.Call) -> Optional[ast.Expr]:
        body_expr = callee.body.statements[0].value
        params = getattr(callee, "param_decls", None)
        if params is None:
            return None
        # Count uses of each parameter in the body.
        uses: Dict[int, int] = {}
        for node in _walk(body_expr):
            if isinstance(node, ast.Ident) and node.binding \
                    and node.binding[0] == "local":
                uses[id(node.binding[1])] = uses.get(id(node.binding[1]),
                                                     0) + 1
        for decl, arg in zip(params, call.args):
            count = uses.get(id(decl), 0)
            if count > 1 and not _is_trivial_arg(arg):
                return None
            if count == 0 and not _is_pure(arg):
                return None  # must not drop side effects
        replacement = {id(decl): arg for decl, arg in zip(params, call.args)}
        return _substitute(_clone(body_expr), replacement,
                           {id(d): d for d in params})

    # (deep copy keeps binding object identity for substitution keys)


def _node_count(expr: ast.Expr) -> int:
    return sum(1 for _ in _walk(expr))


def _walk(expr: ast.Expr):
    yield expr
    for name in ast.field_names(expr.__class__):
        if name in ("ctype", "target_type", "binding"):
            continue
        child = getattr(expr, name)
        if isinstance(child, ast.Expr):
            yield from _walk(child)
        elif isinstance(child, list):
            for c in child:
                if isinstance(c, ast.Expr):
                    yield from _walk(c)


def _references_memory_params(func: ast.FuncDef) -> bool:
    params = getattr(func, "param_decls", [])
    return any(d.needs_memory for d in params)


def _is_trivial_arg(arg: ast.Expr) -> bool:
    return isinstance(arg, (ast.IntLit, ast.FloatLit)) or \
        (isinstance(arg, ast.Ident) and arg.binding
         and arg.binding[0] == "local")


def _substitute(expr: ast.Expr, replacement: Dict[int, ast.Expr],
                param_ids: Dict[int, ast.VarDecl]) -> ast.Expr:
    if isinstance(expr, ast.Ident) and expr.binding \
            and expr.binding[0] == "local" \
            and id(expr.binding[1]) in replacement:
        return _clone(replacement[id(expr.binding[1])])
    for name in ast.field_names(expr.__class__):
        if name in ("ctype", "target_type", "binding"):
            continue
        child = getattr(expr, name)
        if isinstance(child, ast.Expr):
            setattr(expr, name,
                    _substitute(child, replacement, param_ids))
        elif isinstance(child, list) and child and \
                isinstance(child[0], ast.Expr):
            setattr(expr, name,
                    [_substitute(c, replacement, param_ids) for c in child])
    return expr


# ---------------------------------------------------------------------------
# Loop unrolling (-O3)
# ---------------------------------------------------------------------------

_UNROLL_MAX_TRIPS = 8
_UNROLL_MAX_BODY = 16


class _Unroller:
    def run(self, func: ast.FuncDef) -> int:
        return self._visit(func.body)

    def _visit(self, stmt: ast.Stmt) -> int:
        count = 0
        if isinstance(stmt, ast.Block):
            new_statements: List[ast.Stmt] = []
            for s in stmt.statements:
                count += self._visit(s)
                unrolled = self._try_unroll(s)
                if unrolled is not None:
                    count += 1
                    new_statements.extend(unrolled)
                else:
                    new_statements.append(s)
            stmt.statements = new_statements
        elif isinstance(stmt, ast.If):
            count += self._visit(stmt.then)
            if stmt.other is not None:
                count += self._visit(stmt.other)
        elif isinstance(stmt, (ast.While, ast.DoWhile)):
            count += self._visit(stmt.body)
        elif isinstance(stmt, ast.For):
            count += self._visit(stmt.body)
        elif isinstance(stmt, ast.Switch):
            for case in stmt.cases:
                for s in case.body:
                    count += self._visit(s)
        return count

    def _try_unroll(self, stmt: ast.Stmt) -> Optional[List[ast.Stmt]]:
        """Fully unroll `for (T i = C0; i < C1; i++) body`."""
        if not isinstance(stmt, ast.For):
            return None
        init, cond, step = stmt.init, stmt.cond, stmt.step
        if not (isinstance(init, ast.VarDecl) and init.init is not None):
            return None
        start = _const_value(init.init)
        if start is None or init.var_type is not INT and \
                init.var_type != INT:
            return None
        if not (isinstance(cond, ast.Binary) and cond.op == "<"
                and isinstance(cond.left, ast.Ident)
                and cond.left.binding and cond.left.binding[0] == "local"
                and cond.left.binding[1] is init):
            return None
        limit = _const_value(cond.right)
        if limit is None:
            return None
        trips = int(limit) - int(start)
        if not 0 <= trips <= _UNROLL_MAX_TRIPS:
            return None
        if not (isinstance(step, ast.IncDec) and step.op == "++"
                and isinstance(step.target, ast.Ident)
                and step.target.binding
                and step.target.binding[1] is init):
            return None
        if _stmt_size(stmt.body) > _UNROLL_MAX_BODY:
            return None
        if _modifies_var(stmt.body, init) or _has_jumps(stmt.body):
            return None
        if _contains_decl(stmt.body):
            return None  # cloned VarDecls would lack storage assignments
        out: List[ast.Stmt] = []
        for k in range(trips):
            body = _clone(stmt.body)
            _replace_var(body, init, int(start) + k)
            out.append(body)
        return out


def _contains_decl(stmt: ast.Stmt) -> bool:
    if isinstance(stmt, ast.VarDecl):
        return True
    for name in ast.field_names(stmt.__class__):
        child = getattr(stmt, name)
        if isinstance(child, ast.Stmt) and _contains_decl(child):
            return True
        if isinstance(child, list):
            for c in child:
                if isinstance(c, ast.Stmt) and _contains_decl(c):
                    return True
                if isinstance(c, ast.SwitchCase):
                    for s2 in c.body:
                        if _contains_decl(s2):
                            return True
    return False


def _stmt_size(stmt: ast.Stmt) -> int:
    total = 1
    for name in ast.field_names(stmt.__class__):
        child = getattr(stmt, name)
        if isinstance(child, ast.Stmt):
            total += _stmt_size(child)
        elif isinstance(child, ast.Expr):
            total += _node_count(child)
        elif isinstance(child, list):
            for c in child:
                if isinstance(c, ast.Stmt):
                    total += _stmt_size(c)
                elif isinstance(c, ast.Expr):
                    total += _node_count(c)
    return total


def _stmt_exprs(stmt: ast.Stmt):
    for name in ast.field_names(stmt.__class__):
        child = getattr(stmt, name)
        if isinstance(child, ast.Expr):
            yield from _walk(child)
        elif isinstance(child, ast.Stmt):
            yield from _stmt_exprs(child)
        elif isinstance(child, list):
            for c in child:
                if isinstance(c, ast.Stmt):
                    yield from _stmt_exprs(c)
                elif isinstance(c, ast.Expr):
                    yield from _walk(c)
                elif isinstance(c, ast.SwitchCase):
                    for s in c.body:
                        yield from _stmt_exprs(s)


def _modifies_var(stmt: ast.Stmt, decl: ast.VarDecl) -> bool:
    for node in _stmt_exprs(stmt):
        if isinstance(node, (ast.Assign, ast.IncDec)):
            target = node.target
            if isinstance(target, ast.Ident) and target.binding \
                    and target.binding[0] == "local" \
                    and target.binding[1] is decl:
                return True
        if isinstance(node, ast.AddrOf) and isinstance(node.operand,
                                                       ast.Ident):
            if node.operand.binding and node.operand.binding[0] == "local" \
                    and node.operand.binding[1] is decl:
                return True
    return False


def _has_jumps(stmt: ast.Stmt) -> bool:
    if isinstance(stmt, (ast.Break, ast.Continue, ast.Return)):
        return True
    for name in ast.field_names(stmt.__class__):
        child = getattr(stmt, name)
        if isinstance(child, ast.Stmt) and _has_jumps(child):
            return True
        if isinstance(child, list):
            for c in child:
                if isinstance(c, ast.Stmt) and _has_jumps(c):
                    return True
                if isinstance(c, ast.SwitchCase):
                    for s in c.body:
                        if _has_jumps(s):
                            return True
    return False


def _replace_var(stmt: ast.Stmt, decl: ast.VarDecl, value: int) -> None:
    """Replace reads of ``decl`` with a constant, in place."""
    def fix_expr(expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, ast.Ident) and expr.binding \
                and expr.binding[0] == "local" and expr.binding[1] is decl:
            return _make_literal(value, expr.ctype, expr.line)
        for name in ast.field_names(expr.__class__):
            if name in ("ctype", "target_type", "binding"):
                continue
            child = getattr(expr, name)
            if isinstance(child, ast.Expr):
                setattr(expr, name, fix_expr(child))
            elif isinstance(child, list) and child and \
                    isinstance(child[0], ast.Expr):
                setattr(expr, name, [fix_expr(c) for c in child])
        return expr

    def fix_stmt(s: ast.Stmt) -> None:
        for name in ast.field_names(s.__class__):
            child = getattr(s, name)
            if isinstance(child, ast.Expr):
                setattr(s, name, fix_expr(child))
            elif isinstance(child, ast.Stmt):
                fix_stmt(child)
            elif isinstance(child, list):
                new_list = []
                for c in child:
                    if isinstance(c, ast.Expr):
                        new_list.append(fix_expr(c))
                    else:
                        if isinstance(c, ast.Stmt):
                            fix_stmt(c)
                        elif isinstance(c, ast.SwitchCase):
                            for cs in c.body:
                                fix_stmt(cs)
                        new_list.append(c)
                setattr(s, name, new_list)

    fix_stmt(stmt)
