"""Exception hierarchy shared across the whole reproduction stack.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch failures from the toolchain, the runtimes, and the harness uniformly
while still being able to distinguish the failing layer.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class WasmError(ReproError):
    """Base class for WebAssembly substrate failures."""


class EncodeError(WasmError):
    """A module could not be serialized to the binary format."""


class DecodeError(WasmError):
    """A binary module is malformed and could not be parsed."""


class ValidationError(WasmError):
    """A decoded module failed type checking / structural validation."""


class CompileError(ReproError):
    """The MiniC frontend or midend rejected a program."""


class MiniCSyntaxError(CompileError):
    """Lexical or syntactic error in MiniC source."""

    def __init__(self, message: str, line: int = 0, col: int = 0):
        super().__init__(f"{line}:{col}: {message}" if line else message)
        self.line = line
        self.col = col


class MiniCTypeError(CompileError):
    """Semantic (type) error in MiniC source."""

    def __init__(self, message: str, line: int = 0):
        super().__init__(f"line {line}: {message}" if line else message)
        self.line = line


class LinkError(ReproError):
    """Instantiation failed: missing or mismatched imports."""


class Trap(ReproError):
    """A WebAssembly trap raised during execution.

    Mirrors the trap conditions of the core specification: out-of-bounds
    memory access, integer divide by zero, invalid conversion, unreachable,
    call-stack exhaustion, and indirect-call signature mismatch.
    """

    def __init__(self, kind: str, message: str = ""):
        super().__init__(f"trap: {kind}" + (f": {message}" if message else ""))
        self.kind = kind


class ExitProc(ReproError):
    """Raised by WASI ``proc_exit`` to unwind the guest program."""

    def __init__(self, code: int):
        super().__init__(f"proc_exit({code})")
        self.code = code


class WasiError(ReproError):
    """A WASI host-call failed in a way that cannot map to an errno."""


class HarnessError(ReproError):
    """An experiment driver was misconfigured or a run failed."""
