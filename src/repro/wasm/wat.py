"""A WAT-flavoured disassembler for diagnostics and tests.

Not a full WebAssembly text-format implementation — it prints modules in a
readable, stable, folded-free form that the test suite and examples use to
inspect compiler output.  The output deliberately mirrors real ``wasm-dis``
layout: one instruction per line with nesting indentation.
"""

from __future__ import annotations

from typing import List

from . import opcodes as op
from .module import KIND_NAMES, Instr, Module
from .types import type_name


def format_instr(ins: Instr) -> str:
    """Render a single instruction tuple as text."""
    opcode = ins[0]
    name = op.name_of(opcode)
    shape = op.IMMEDIATES.get(opcode, "")
    if shape == "":
        return name
    if shape == "bt":
        if ins[1] == 0x40:
            return name
        return f"{name} (result {type_name(ins[1])})"
    if shape == "tbl":
        labels = " ".join(str(l) for l in ins[1])
        return f"{name} {labels} {ins[2]}".replace("  ", " ")
    if shape == "mem":
        align, offset = ins[1], ins[2]
        parts = [name]
        if offset:
            parts.append(f"offset={offset}")
        parts.append(f"align={1 << align}")
        return " ".join(parts)
    if shape in ("i32", "i64"):
        return f"{name} {ins[1]}"
    if shape in ("f32", "f64"):
        return f"{name} {ins[1]!r}"
    if shape == "zero":
        return name
    return " ".join([name] + [str(x) for x in ins[1:]])


def format_body(body: List[Instr], indent: str = "    ") -> str:
    """Render a function body with structural indentation."""
    lines = []
    depth = 0
    for ins in body:
        opcode = ins[0]
        if opcode in (op.END, op.ELSE):
            depth = max(0, depth - 1)
        lines.append(indent + "  " * depth + format_instr(ins))
        if opcode in (op.BLOCK, op.LOOP, op.IF, op.ELSE):
            depth += 1
    return "\n".join(lines)


def module_to_wat(module: Module) -> str:
    """Render a whole module in WAT-ish form."""
    lines = ["(module"]
    for i, ftype in enumerate(module.types):
        lines.append(f"  (type $t{i} (func {ftype}))")
    for imp in module.imports:
        kind = KIND_NAMES[imp.kind]
        lines.append(f'  (import "{imp.module}" "{imp.name}" ({kind} {imp.desc}))')
    for i, mem in enumerate(module.memories):
        mx = f" {mem.maximum}" if mem.maximum is not None else ""
        lines.append(f"  (memory {mem.minimum}{mx})")
    for i, tbl in enumerate(module.tables):
        mx = f" {tbl.maximum}" if tbl.maximum is not None else ""
        lines.append(f"  (table {tbl.minimum}{mx} funcref)")
    for i, glob in enumerate(module.globals):
        mut = "mut " if glob.gtype.mutable else ""
        init = format_instr(glob.init[0]) if glob.init else ""
        lines.append(f"  (global $g{i} ({mut}{type_name(glob.gtype.valtype)}) "
                     f"({init}))")
    for i, func in enumerate(module.functions):
        index = i + module.num_imported_funcs
        ftype = module.types[func.type_index]
        label = func.name or f"f{index}"
        lines.append(f"  (func ${label} {ftype}")
        locals_ = func.local_types()
        if locals_:
            lines.append("    (local " +
                         " ".join(type_name(t) for t in locals_) + ")")
        lines.append(format_body(func.body))
        lines.append("  )")
    for export in module.exports:
        kind = KIND_NAMES[export.kind]
        lines.append(f'  (export "{export.name}" ({kind} {export.index}))')
    for seg in module.data:
        preview = seg.data[:16]
        suffix = "..." if len(seg.data) > 16 else ""
        lines.append(f"  (data ({format_instr(seg.offset[0])}) "
                     f"{preview!r}{suffix} ;; {len(seg.data)} bytes)")
    lines.append(")")
    return "\n".join(lines)
