"""Binary decoder: ``.wasm`` bytes -> :class:`~repro.wasm.module.Module`.

This is the component every runtime model shares, mirroring reality: all
five studied runtimes parse the same binary format before diverging into
interpretation or compilation.  The decoder is strict — unknown opcodes,
malformed LEB128s, truncated sections, and out-of-order sections raise
:class:`~repro.errors.DecodeError`.

The decoder also reports how much work it did (bytes scanned, instructions
decoded) so runtime models can charge module-loading cost to the hardware
model.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import DecodeError
from . import leb128, opcodes as op
from .encoder import MAGIC, VERSION
from .module import (KIND_FUNC, KIND_GLOBAL, KIND_MEMORY, KIND_TABLE,
                     DataSegment, ElementSegment, Export, Function, Global,
                     Import, Instr, Module)
from .types import FUNCREF, VOID, FuncType, GlobalType, Limits, is_value_type


@dataclass
class DecodeStats:
    """Work performed by a decode, for runtime cost accounting.

    ``non_minimal`` lists the byte offsets (into the module) of LEB128
    fields whose encoding is longer than necessary.  The spec tolerates
    them, so decoding succeeds — but no real toolchain emits them, so
    the static auditor surfaces each site as a WA006 diagnostic.  The
    tuple default keeps entries unpickled from older disk caches
    readable (they fall back to the class-level ``()``).
    """

    bytes_scanned: int = 0
    instructions: int = 0
    functions: int = 0
    non_minimal: Tuple[int, ...] = ()


class _Reader:
    """Byte cursor with spec-shaped primitive readers.

    ``nonmin`` (shared across the per-section readers of one module
    decode) collects start offsets of non-minimally encoded LEB128s.
    """

    def __init__(self, data: bytes, offset: int = 0, end: int = -1,
                 nonmin: Optional[List[int]] = None):
        self.data = data
        self.offset = offset
        self.end = len(data) if end < 0 else end
        self.nonmin = nonmin

    def eof(self) -> bool:
        return self.offset >= self.end

    def byte(self) -> int:
        if self.offset >= self.end:
            raise DecodeError("unexpected end of input")
        b = self.data[self.offset]
        self.offset += 1
        return b

    def raw(self, n: int) -> bytes:
        if self.offset + n > self.end:
            raise DecodeError("unexpected end of input")
        out = self.data[self.offset:self.offset + n]
        self.offset += n
        return out

    def u32(self) -> int:
        start = self.offset
        value, self.offset, minimal = \
            leb128.decode_u_ex(self.data, self.offset, 32)
        if self.offset > self.end:
            raise DecodeError("LEB128 crosses section boundary")
        if not minimal and self.nonmin is not None:
            self.nonmin.append(start)
        return value

    def s32(self) -> int:
        start = self.offset
        value, self.offset, minimal = \
            leb128.decode_s_ex(self.data, self.offset, 32)
        if not minimal and self.nonmin is not None:
            self.nonmin.append(start)
        return value

    def s64(self) -> int:
        start = self.offset
        value, self.offset, minimal = \
            leb128.decode_s_ex(self.data, self.offset, 64)
        if not minimal and self.nonmin is not None:
            self.nonmin.append(start)
        return value

    def f32(self) -> float:
        return struct.unpack("<f", self.raw(4))[0]

    def f64(self) -> float:
        return struct.unpack("<d", self.raw(8))[0]

    def name(self) -> str:
        length = self.u32()
        try:
            return self.raw(length).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise DecodeError(f"invalid UTF-8 name: {exc}") from exc

    def limits(self) -> Limits:
        flag = self.byte()
        if flag == 0:
            return Limits(self.u32())
        if flag == 1:
            minimum = self.u32()
            return Limits(minimum, self.u32())
        raise DecodeError(f"invalid limits flag 0x{flag:02x}")

    def valtype(self) -> int:
        vt = self.byte()
        if not is_value_type(vt):
            raise DecodeError(f"invalid value type 0x{vt:02x}")
        return vt

    def blocktype(self) -> int:
        bt = self.byte()
        if bt != VOID and not is_value_type(bt):
            raise DecodeError(f"invalid block type 0x{bt:02x}")
        return bt


def decode_instr(r: _Reader) -> Instr:
    """Decode one instruction (opcode + immediates) into tuple form."""
    opcode = r.byte()
    shape = op.IMMEDIATES.get(opcode)
    if shape is None:
        raise DecodeError(f"unknown opcode 0x{opcode:02x} at offset {r.offset - 1}")
    if shape == "":
        return (opcode,)
    if shape == "bt":
        return (opcode, r.blocktype())
    if shape == "u":
        return (opcode, r.u32())
    if shape == "uu":
        return (opcode, r.u32(), r.u32())
    if shape == "mem":
        return (opcode, r.u32(), r.u32())
    if shape == "tbl":
        labels = [r.u32() for _ in range(r.u32())]
        return (opcode, labels, r.u32())
    if shape == "i32":
        return (opcode, r.s32())
    if shape == "i64":
        return (opcode, r.s64())
    if shape == "f32":
        return (opcode, r.f32())
    if shape == "f64":
        return (opcode, r.f64())
    if shape == "zero":
        if r.byte() != 0:
            raise DecodeError("memory.size/grow reserved byte must be zero")
        return (opcode,)
    raise DecodeError(f"unhandled immediate shape {shape!r}")  # pragma: no cover


def _decode_expr(r: _Reader, stats: DecodeStats) -> List[Instr]:
    """Decode instructions until the matching top-level END (consumed)."""
    body: List[Instr] = []
    depth = 0
    while True:
        ins = decode_instr(r)
        stats.instructions += 1
        opcode = ins[0]
        if opcode in (op.BLOCK, op.LOOP, op.IF):
            depth += 1
        elif opcode == op.END:
            if depth == 0:
                return body
            depth -= 1
        body.append(ins)


def decode_module(data: bytes) -> Module:
    """Decode a binary module (see :func:`decode_module_with_stats`)."""
    module, _ = decode_module_with_stats(data)
    return module


def decode_module_with_stats(data: bytes) -> Tuple[Module, DecodeStats]:
    """Decode a binary module, also returning decode-work statistics."""
    stats = DecodeStats(bytes_scanned=len(data))
    nonmin: List[int] = []
    r = _Reader(data, nonmin=nonmin)
    if r.raw(4) != MAGIC:
        raise DecodeError("bad magic number")
    if r.raw(4) != VERSION:
        raise DecodeError("unsupported version")

    module = Module()
    func_type_indices: List[int] = []
    last_section = 0

    while not r.eof():
        section_id = r.byte()
        size = r.u32()
        section_end = r.offset + size
        if section_end > len(data):
            raise DecodeError("section extends past end of module")
        sr = _Reader(data, r.offset, section_end, nonmin=nonmin)

        if section_id != 0:
            if section_id <= last_section:
                raise DecodeError(f"section {section_id} out of order")
            last_section = section_id

        if section_id == 0:
            name = sr.name()
            module.custom_sections.append((name, sr.raw(section_end - sr.offset)))
        elif section_id == 1:
            for _ in range(sr.u32()):
                if sr.byte() != 0x60:
                    raise DecodeError("function type must start with 0x60")
                params = tuple(sr.valtype() for _ in range(sr.u32()))
                results = tuple(sr.valtype() for _ in range(sr.u32()))
                module.types.append(FuncType(params, results))
        elif section_id == 2:
            for _ in range(sr.u32()):
                mod_name, item_name = sr.name(), sr.name()
                kind = sr.byte()
                if kind == KIND_FUNC:
                    desc: object = sr.u32()
                elif kind == KIND_TABLE:
                    if sr.byte() != FUNCREF:
                        raise DecodeError("only funcref tables supported")
                    desc = sr.limits()
                elif kind == KIND_MEMORY:
                    desc = sr.limits()
                elif kind == KIND_GLOBAL:
                    vt = sr.valtype()
                    desc = GlobalType(vt, sr.byte() == 1)
                else:
                    raise DecodeError(f"unknown import kind {kind}")
                module.imports.append(Import(mod_name, item_name, kind, desc))
        elif section_id == 3:
            func_type_indices = [sr.u32() for _ in range(sr.u32())]
        elif section_id == 4:
            for _ in range(sr.u32()):
                if sr.byte() != FUNCREF:
                    raise DecodeError("only funcref tables supported")
                module.tables.append(sr.limits())
        elif section_id == 5:
            for _ in range(sr.u32()):
                module.memories.append(sr.limits())
        elif section_id == 6:
            for _ in range(sr.u32()):
                vt = sr.valtype()
                mutable = sr.byte() == 1
                init = _decode_expr(sr, stats)
                module.globals.append(Global(GlobalType(vt, mutable), init))
        elif section_id == 7:
            for _ in range(sr.u32()):
                name = sr.name()
                kind = sr.byte()
                if kind not in (KIND_FUNC, KIND_TABLE, KIND_MEMORY, KIND_GLOBAL):
                    raise DecodeError(f"unknown export kind {kind}")
                module.exports.append(Export(name, kind, sr.u32()))
        elif section_id == 8:
            module.start = sr.u32()
        elif section_id == 9:
            for _ in range(sr.u32()):
                table_index = sr.u32()
                offset = _decode_expr(sr, stats)
                funcs = [sr.u32() for _ in range(sr.u32())]
                module.elements.append(ElementSegment(table_index, offset, funcs))
        elif section_id == 10:
            count = sr.u32()
            if count != len(func_type_indices):
                raise DecodeError("code section count mismatch with function section")
            for type_index in func_type_indices:
                body_size = sr.u32()
                body_end = sr.offset + body_size
                br = _Reader(data, sr.offset, body_end, nonmin=nonmin)
                local_decls = [(br.u32(), br.valtype()) for _ in range(br.u32())]
                body = _decode_expr(br, stats)
                if br.offset != body_end:
                    raise DecodeError("function body size mismatch")
                sr.offset = body_end
                module.functions.append(Function(type_index, local_decls, body))
                stats.functions += 1
        elif section_id == 11:
            for _ in range(sr.u32()):
                memory_index = sr.u32()
                offset = _decode_expr(sr, stats)
                length = sr.u32()
                module.data.append(DataSegment(memory_index, offset, sr.raw(length)))
        else:
            raise DecodeError(f"unknown section id {section_id}")

        if sr.offset != section_end:
            raise DecodeError(f"section {section_id} has trailing bytes")
        r.offset = section_end

    if func_type_indices and not module.functions:
        raise DecodeError("function section without code section")
    stats.non_minimal = tuple(nonmin)
    return module, stats
