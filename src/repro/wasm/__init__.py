"""WebAssembly substrate: binary format, module IR, validation.

This package implements the MVP core of WebAssembly that the paper's
toolchain and runtimes operate on: LEB128 encodings, the full numeric /
memory / control instruction set, the section-structured binary format
(encoder and strict decoder), spec-algorithm validation, a module builder,
and a WAT-style disassembler.
"""

from . import opcodes
from .builder import FunctionBuilder, ModuleBuilder
from .decoder import DecodeStats, decode_module, decode_module_with_stats
from .encoder import encode_module
from .module import (KIND_FUNC, KIND_GLOBAL, KIND_MEMORY, KIND_TABLE,
                     DataSegment, ElementSegment, Export, Function, Global,
                     Import, Module)
from .types import (F32, F64, FUNCREF, I32, I64, PAGE_SIZE, VOID, FuncType,
                    GlobalType, Limits, type_name)
from .validator import validate_module
from .wat import format_body, format_instr, module_to_wat

__all__ = [
    "opcodes",
    "FunctionBuilder", "ModuleBuilder",
    "DecodeStats", "decode_module", "decode_module_with_stats",
    "encode_module",
    "KIND_FUNC", "KIND_GLOBAL", "KIND_MEMORY", "KIND_TABLE",
    "DataSegment", "ElementSegment", "Export", "Function", "Global",
    "Import", "Module",
    "F32", "F64", "FUNCREF", "I32", "I64", "PAGE_SIZE", "VOID",
    "FuncType", "GlobalType", "Limits", "type_name",
    "validate_module",
    "format_body", "format_instr", "module_to_wat",
]
