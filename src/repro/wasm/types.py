"""WebAssembly type machinery: value types, function types, limits.

Value types are carried as their binary-format byte values (``0x7F`` for
i32 and so on) because every layer — encoder, validator, runtimes — works
with those bytes directly; :class:`ValType` provides names and helpers on
top of the raw codes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..errors import ValidationError

I32 = 0x7F
I64 = 0x7E
F32 = 0x7D
F64 = 0x7C
FUNCREF = 0x70
VOID = 0x40  # pseudo "empty" block type

_NAMES = {I32: "i32", I64: "i64", F32: "f32", F64: "f64",
          FUNCREF: "funcref", VOID: "void"}

VALUE_TYPES = frozenset((I32, I64, F32, F64))


def type_name(vt: int) -> str:
    """Printable name for a value-type byte."""
    return _NAMES.get(vt, f"0x{vt:02x}")


def is_value_type(vt: int) -> bool:
    return vt in VALUE_TYPES


def is_float_type(vt: int) -> bool:
    return vt in (F32, F64)


def is_int_type(vt: int) -> bool:
    return vt in (I32, I64)


def byte_width(vt: int) -> int:
    """Natural width in bytes of a value of this type."""
    if vt in (I32, F32):
        return 4
    if vt in (I64, F64):
        return 8
    raise ValidationError(f"no width for type {type_name(vt)}")


def zero_value(vt: int):
    """The spec-defined default value used to initialize locals."""
    return 0.0 if vt in (F32, F64) else 0


@dataclass(frozen=True)
class FuncType:
    """A function signature: parameter and result value types.

    The MVP allows at most one result, which is all this reproduction needs;
    the validator enforces it at module boundaries.
    """

    params: Tuple[int, ...] = ()
    results: Tuple[int, ...] = ()

    def __post_init__(self):
        for vt in self.params + self.results:
            if not is_value_type(vt):
                raise ValidationError(f"invalid value type 0x{vt:02x} in signature")
        if len(self.results) > 1:
            raise ValidationError("multi-value results are not supported (MVP)")

    def __str__(self) -> str:
        ps = " ".join(type_name(p) for p in self.params) or "()"
        rs = " ".join(type_name(r) for r in self.results) or "()"
        return f"[{ps}] -> [{rs}]"


@dataclass(frozen=True)
class Limits:
    """Memory/table limits in units of pages or elements."""

    minimum: int
    maximum: Optional[int] = None

    def __post_init__(self):
        if self.minimum < 0:
            raise ValidationError("limits minimum must be non-negative")
        if self.maximum is not None and self.maximum < self.minimum:
            raise ValidationError("limits maximum below minimum")


@dataclass(frozen=True)
class GlobalType:
    """Type of a global: value type plus mutability."""

    valtype: int
    mutable: bool = False

    def __post_init__(self):
        if not is_value_type(self.valtype):
            raise ValidationError(f"invalid global type 0x{self.valtype:02x}")


PAGE_SIZE = 65536
