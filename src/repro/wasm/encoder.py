"""Binary encoder: :class:`~repro.wasm.module.Module` -> ``.wasm`` bytes.

Produces the standard layout: magic, version, then sections in canonical
order, each length-prefixed.  The output of this encoder is bit-for-bit
decodable by :mod:`repro.wasm.decoder` (a property the test suite checks
exhaustively), and instruction immediates follow the spec encodings
(SLEB128 constants, memargs as align+offset, IEEE-754 little-endian floats).
"""

from __future__ import annotations

import struct
from typing import List

from ..errors import EncodeError
from . import leb128, opcodes as op
from .module import (KIND_FUNC, KIND_GLOBAL, KIND_MEMORY, KIND_TABLE,
                     Function, Instr, Module)
from .types import FUNCREF, FuncType, GlobalType, Limits

MAGIC = b"\x00asm"
VERSION = b"\x01\x00\x00\x00"

_SEC_TYPE = 1
_SEC_IMPORT = 2
_SEC_FUNCTION = 3
_SEC_TABLE = 4
_SEC_MEMORY = 5
_SEC_GLOBAL = 6
_SEC_EXPORT = 7
_SEC_START = 8
_SEC_ELEMENT = 9
_SEC_CODE = 10
_SEC_DATA = 11


def _name(s: str) -> bytes:
    raw = s.encode("utf-8")
    return leb128.encode_u(len(raw)) + raw


def _limits(lim: Limits) -> bytes:
    if lim.maximum is None:
        return b"\x00" + leb128.encode_u(lim.minimum)
    return b"\x01" + leb128.encode_u(lim.minimum) + leb128.encode_u(lim.maximum)


def _functype(ft: FuncType) -> bytes:
    out = bytearray(b"\x60")
    out += leb128.encode_u(len(ft.params))
    out += bytes(ft.params)
    out += leb128.encode_u(len(ft.results))
    out += bytes(ft.results)
    return bytes(out)


def _globaltype(gt: GlobalType) -> bytes:
    return bytes((gt.valtype, 1 if gt.mutable else 0))


def encode_instr(ins: Instr, out: bytearray) -> None:
    """Append the binary encoding of a single instruction."""
    opcode = ins[0]
    shape = op.IMMEDIATES.get(opcode)
    if shape is None:
        raise EncodeError(f"cannot encode unknown opcode 0x{opcode:02x}")
    out.append(opcode)
    if shape == "":
        return
    if shape == "bt":
        out.append(ins[1])
    elif shape == "u":
        out += leb128.encode_u(ins[1])
    elif shape == "uu":
        out += leb128.encode_u(ins[1])
        out += leb128.encode_u(ins[2])
    elif shape == "mem":
        out += leb128.encode_u(ins[1])  # align (log2)
        out += leb128.encode_u(ins[2])  # offset
    elif shape == "tbl":
        labels: List[int] = ins[1]
        out += leb128.encode_u(len(labels))
        for label in labels:
            out += leb128.encode_u(label)
        out += leb128.encode_u(ins[2])  # default label
    elif shape == "i32":
        out += leb128.encode_s(ins[1])
    elif shape == "i64":
        out += leb128.encode_s(ins[1])
    elif shape == "f32":
        out += struct.pack("<f", ins[1])
    elif shape == "f64":
        out += struct.pack("<d", ins[1])
    elif shape == "zero":
        out.append(0)
    else:  # pragma: no cover - table is closed
        raise EncodeError(f"unhandled immediate shape {shape!r}")


def _expr(body: List[Instr]) -> bytes:
    """Encode an instruction sequence followed by the terminating END."""
    out = bytearray()
    for ins in body:
        encode_instr(ins, out)
    out.append(op.END)
    return bytes(out)


def _section(section_id: int, payload: bytes) -> bytes:
    return bytes((section_id,)) + leb128.encode_u(len(payload)) + payload


def _vec(items: List[bytes]) -> bytes:
    return leb128.encode_u(len(items)) + b"".join(items)


def _code_entry(func: Function) -> bytes:
    locals_part = _vec([leb128.encode_u(count) + bytes((vt,))
                        for count, vt in func.local_decls])
    body = locals_part + _expr(func.body)
    return leb128.encode_u(len(body)) + body


def encode_module(module: Module) -> bytes:
    """Serialize a module to the binary format."""
    out = bytearray(MAGIC + VERSION)

    if module.types:
        out += _section(_SEC_TYPE, _vec([_functype(t) for t in module.types]))

    if module.imports:
        entries = []
        for imp in module.imports:
            entry = bytearray(_name(imp.module) + _name(imp.name))
            entry.append(imp.kind)
            if imp.kind == KIND_FUNC:
                entry += leb128.encode_u(imp.desc)
            elif imp.kind == KIND_TABLE:
                entry.append(FUNCREF)
                entry += _limits(imp.desc)
            elif imp.kind == KIND_MEMORY:
                entry += _limits(imp.desc)
            elif imp.kind == KIND_GLOBAL:
                entry += _globaltype(imp.desc)
            else:
                raise EncodeError(f"unknown import kind {imp.kind}")
            entries.append(bytes(entry))
        out += _section(_SEC_IMPORT, _vec(entries))

    if module.functions:
        out += _section(_SEC_FUNCTION,
                        _vec([leb128.encode_u(f.type_index)
                              for f in module.functions]))

    if module.tables:
        out += _section(_SEC_TABLE,
                        _vec([bytes((FUNCREF,)) + _limits(t)
                              for t in module.tables]))

    if module.memories:
        out += _section(_SEC_MEMORY, _vec([_limits(m) for m in module.memories]))

    if module.globals:
        out += _section(_SEC_GLOBAL,
                        _vec([_globaltype(g.gtype) + _expr(g.init)
                              for g in module.globals]))

    if module.exports:
        out += _section(_SEC_EXPORT,
                        _vec([_name(e.name) + bytes((e.kind,)) +
                              leb128.encode_u(e.index)
                              for e in module.exports]))

    if module.start is not None:
        out += _section(_SEC_START, leb128.encode_u(module.start))

    if module.elements:
        entries = []
        for seg in module.elements:
            entry = leb128.encode_u(seg.table_index) + _expr(seg.offset)
            entry += _vec([leb128.encode_u(i) for i in seg.func_indices])
            entries.append(entry)
        out += _section(_SEC_ELEMENT, _vec(entries))

    if module.functions:
        out += _section(_SEC_CODE, _vec([_code_entry(f) for f in module.functions]))

    if module.data:
        entries = []
        for seg in module.data:
            entry = leb128.encode_u(seg.memory_index) + _expr(seg.offset)
            entry += leb128.encode_u(len(seg.data)) + seg.data
            entries.append(entry)
        out += _section(_SEC_DATA, _vec(entries))

    for name, payload in module.custom_sections:
        out += _section(0, _name(name) + payload)

    return bytes(out)
