"""LEB128 variable-length integer encoding used by the Wasm binary format.

WebAssembly encodes all integers in its binary format as LEB128: unsigned
(ULEB128) for sizes, counts and indices, and signed (SLEB128) for constant
operands.  These helpers are shared by the encoder and the decoder and are
deliberately defensive: the decoder enforces the spec's bound on the number
of bytes a value of a given bit width may occupy, so that a malformed module
fails with :class:`~repro.errors.DecodeError` rather than looping forever.
"""

from __future__ import annotations

from typing import Tuple

from ..errors import DecodeError

_U32_MAX_BYTES = 5
_U64_MAX_BYTES = 10


def encode_u(value: int) -> bytes:
    """Encode a non-negative integer as ULEB128."""
    if value < 0:
        raise ValueError(f"ULEB128 cannot encode negative value {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def encode_s(value: int) -> bytes:
    """Encode a signed integer as SLEB128."""
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        # Sign bit of the emitted byte is bit 6.
        if (value == 0 and not byte & 0x40) or (value == -1 and byte & 0x40):
            out.append(byte)
            return bytes(out)
        out.append(byte | 0x80)


def decode_u_ex(data: bytes, offset: int,
                max_bits: int = 32) -> Tuple[int, int, bool]:
    """Decode a ULEB128 integer, also reporting encoding minimality.

    Returns ``(value, new_offset, minimal)``.  ``max_bits`` bounds the
    accepted width (32 for indices/sizes, 64 for i64 operand
    immediates).  An encoding is *non-minimal* when it spends more
    bytes than :func:`encode_u` would — i.e. its final byte is a pure
    ``0x00`` continuation pad.  The spec accepts such encodings, so the
    decoder does too, but it must *record* them: real toolchains never
    emit them, which makes each one a lint-worthy oddity (WA006).
    """
    result = 0
    shift = 0
    max_bytes = _U32_MAX_BYTES if max_bits == 32 else _U64_MAX_BYTES
    for count in range(max_bytes):
        if offset >= len(data):
            raise DecodeError("unexpected end of ULEB128")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            if result >> max_bits:
                raise DecodeError(f"ULEB128 value exceeds {max_bits} bits")
            return result, offset, not (count and byte == 0)
        shift += 7
    raise DecodeError(f"ULEB128 longer than {max_bytes} bytes")


def decode_u(data: bytes, offset: int, max_bits: int = 32) -> Tuple[int, int]:
    """Decode a ULEB128 integer.  Returns ``(value, new_offset)``."""
    value, offset, _minimal = decode_u_ex(data, offset, max_bits)
    return value, offset


def decode_s_ex(data: bytes, offset: int,
                max_bits: int = 32) -> Tuple[int, int, bool]:
    """Decode an SLEB128 integer, also reporting encoding minimality.

    Returns ``(value, new_offset, minimal)``.  An SLEB128 is
    non-minimal when its final byte is a sign-extension pad: ``0x00``
    after a byte with bit 6 clear, or ``0x7f`` after a byte with bit 6
    set.
    """
    result = 0
    shift = 0
    prev = 0
    max_bytes = _U32_MAX_BYTES if max_bits == 32 else _U64_MAX_BYTES
    for count in range(max_bytes):
        if offset >= len(data):
            raise DecodeError("unexpected end of SLEB128")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        shift += 7
        if not byte & 0x80:
            if byte & 0x40 and shift < max_bits + 7:
                result -= 1 << shift
            lo = -(1 << (max_bits - 1))
            hi = (1 << (max_bits - 1)) - 1
            if not lo <= result <= hi:
                raise DecodeError(f"SLEB128 value exceeds {max_bits} bits")
            minimal = not (count and
                           ((byte == 0 and not prev & 0x40) or
                            (byte == 0x7F and prev & 0x40)))
            return result, offset, minimal
        prev = byte
    raise DecodeError(f"SLEB128 longer than {max_bytes} bytes")


def decode_s(data: bytes, offset: int, max_bits: int = 32) -> Tuple[int, int]:
    """Decode an SLEB128 integer.  Returns ``(value, new_offset)``."""
    value, offset, _minimal = decode_s_ex(data, offset, max_bits)
    return value, offset
