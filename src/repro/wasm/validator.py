"""Module validation: the spec's type-checking algorithm.

Implements the control-frame / operand-stack validation algorithm from the
WebAssembly core specification (appendix "Validation Algorithm"), including
unreachable-code polymorphism.  All five runtime models validate before
executing, mirroring the real runtimes, and the interpreters additionally
rely on validation guarantees (e.g. balanced control structure) for their
pre-computed side tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import ValidationError
from . import opcodes as op
from .module import (KIND_FUNC, KIND_GLOBAL, KIND_MEMORY, KIND_TABLE,
                     Function, Instr, Module)
from .types import (F32, F64, I32, I64, VOID, FuncType, is_value_type,
                    type_name)

_UNKNOWN = -1  # polymorphic stack slot produced by unreachable code


@dataclass
class _Frame:
    opcode: int                 # BLOCK / LOOP / IF or 0 for the function body
    start_types: tuple
    end_types: tuple
    height: int
    unreachable: bool = False

    def label_types(self) -> tuple:
        """Types a branch to this frame must provide (loop: params)."""
        return self.start_types if self.opcode == op.LOOP else self.end_types


class _BodyValidator:
    """Validates a single instruction sequence."""

    def __init__(self, module: Module, locals_: List[int],
                 result_types: tuple, where: str):
        self.module = module
        self.locals = locals_
        self.where = where
        self.stack: List[int] = []
        self.frames: List[_Frame] = [
            _Frame(0, (), result_types, 0)
        ]

    # -- stack primitives -------------------------------------------------

    def _fail(self, message: str) -> None:
        raise ValidationError(f"{self.where}: {message}")

    def push(self, vt: int) -> None:
        self.stack.append(vt)

    def pop(self, expect: Optional[int] = None) -> int:
        frame = self.frames[-1]
        if len(self.stack) == frame.height:
            if frame.unreachable:
                return expect if expect is not None else _UNKNOWN
            self._fail("operand stack underflow")
        actual = self.stack.pop()
        if expect is not None and actual != expect and actual != _UNKNOWN:
            self._fail(f"type mismatch: expected {type_name(expect)}, "
                       f"got {type_name(actual)}")
        return actual

    def push_many(self, types: tuple) -> None:
        for vt in types:
            self.push(vt)

    def pop_many(self, types: tuple) -> None:
        for vt in reversed(types):
            self.pop(vt)

    # -- control frames ----------------------------------------------------

    def push_frame(self, opcode: int, start: tuple, end: tuple) -> None:
        self.frames.append(_Frame(opcode, start, end, len(self.stack)))
        self.push_many(start)

    def pop_frame(self) -> _Frame:
        frame = self.frames[-1]
        self.pop_many(frame.end_types)
        if len(self.stack) != frame.height and not frame.unreachable:
            self._fail("values remaining on stack at end of block")
        del self.stack[frame.height:]
        self.frames.pop()
        return frame

    def set_unreachable(self) -> None:
        frame = self.frames[-1]
        del self.stack[frame.height:]
        frame.unreachable = True

    def frame_at(self, label: int) -> _Frame:
        if label >= len(self.frames):
            self._fail(f"branch label {label} out of range")
        return self.frames[-1 - label]

    # -- driver --------------------------------------------------------------

    def run(self, body: List[Instr]) -> None:
        for ins in body:
            self.instr(ins)
        # Implicit end of function body.
        frame = self.frames[-1]
        if len(self.frames) != 1:
            self._fail("unbalanced control structure (missing end)")
        self.pop_many(frame.end_types)
        if len(self.stack) != 0 and not frame.unreachable:
            self._fail("values remaining on stack at function end")

    def instr(self, ins: Instr) -> None:
        o = ins[0]
        module = self.module

        if o == op.UNREACHABLE:
            self.set_unreachable()
        elif o == op.NOP:
            pass
        elif o in (op.BLOCK, op.LOOP):
            bt = ins[1]
            results = () if bt == VOID else (bt,)
            self.push_frame(o, (), results)
        elif o == op.IF:
            self.pop(I32)
            bt = ins[1]
            results = () if bt == VOID else (bt,)
            self.push_frame(o, (), results)
        elif o == op.ELSE:
            frame = self.frames[-1]
            if frame.opcode != op.IF:
                self._fail("else without matching if")
            self.pop_frame()
            # Re-open as the else arm with the same result types.
            self.push_frame(op.ELSE, frame.start_types, frame.end_types)
        elif o == op.END:
            if len(self.frames) <= 1:
                self._fail("end without matching block")
            frame = self.frames[-1]
            if frame.opcode == op.IF and frame.end_types:
                self._fail("if with result type requires else arm")
            self.pop_frame()
            self.push_many(frame.end_types)
        elif o == op.BR:
            frame = self.frame_at(ins[1])
            self.pop_many(frame.label_types())
            self.set_unreachable()
        elif o == op.BR_IF:
            self.pop(I32)
            frame = self.frame_at(ins[1])
            types = frame.label_types()
            self.pop_many(types)
            self.push_many(types)
        elif o == op.BR_TABLE:
            self.pop(I32)
            default_frame = self.frame_at(ins[2])
            expected = default_frame.label_types()
            for label in ins[1]:
                if self.frame_at(label).label_types() != expected:
                    self._fail("br_table label type mismatch")
            self.pop_many(expected)
            self.set_unreachable()
        elif o == op.RETURN:
            self.pop_many(self.frames[0].end_types)
            self.set_unreachable()
        elif o == op.CALL:
            index = ins[1]
            if index >= module.num_funcs:
                self._fail(f"call to undefined function {index}")
            ftype = module.func_type(index)
            self.pop_many(ftype.params)
            self.push_many(ftype.results)
        elif o == op.CALL_INDIRECT:
            type_index = ins[1]
            if type_index >= len(module.types):
                self._fail(f"call_indirect with bad type index {type_index}")
            if not module.tables and not module.imported(KIND_TABLE):
                self._fail("call_indirect without a table")
            self.pop(I32)
            ftype = module.types[type_index]
            self.pop_many(ftype.params)
            self.push_many(ftype.results)
        elif o == op.DROP:
            self.pop()
        elif o == op.SELECT:
            self.pop(I32)
            t1 = self.pop()
            t2 = self.pop()
            if t1 != t2 and _UNKNOWN not in (t1, t2):
                self._fail("select operand types differ")
            self.push(t2 if t1 == _UNKNOWN else t1)
        elif o == op.LOCAL_GET:
            self.push(self._local_type(ins[1]))
        elif o == op.LOCAL_SET:
            self.pop(self._local_type(ins[1]))
        elif o == op.LOCAL_TEE:
            vt = self._local_type(ins[1])
            self.pop(vt)
            self.push(vt)
        elif o == op.GLOBAL_GET:
            self.push(self._global_type(ins[1]).valtype)
        elif o == op.GLOBAL_SET:
            gt = self._global_type(ins[1])
            if not gt.mutable:
                self._fail(f"global.set on immutable global {ins[1]}")
            self.pop(gt.valtype)
        elif o in op.SIGNATURES:
            if o in op.ACCESS_WIDTH:
                self._check_memarg(ins, o)
            params, results = op.SIGNATURES[o]
            self.pop_many(params)
            self.push_many(results)
        elif o in (op.MEMORY_SIZE, op.MEMORY_GROW):  # pragma: no cover
            pass  # covered by SIGNATURES above
        else:
            self._fail(f"unknown opcode 0x{o:02x}")

    def _local_type(self, index: int) -> int:
        if index >= len(self.locals):
            self._fail(f"local index {index} out of range")
        return self.locals[index]

    def _global_type(self, index: int):
        if index >= self.module.num_globals:
            self._fail(f"global index {index} out of range")
        return self.module.global_type(index)

    def _check_memarg(self, ins: Instr, o: int) -> None:
        if not self.module.memories and not self.module.imported(KIND_MEMORY):
            self._fail("memory instruction without a memory")
        align = ins[1]
        width = op.ACCESS_WIDTH[o]
        if (1 << align) > width:
            self._fail(f"alignment 2**{align} larger than access width {width}")


def _validate_const_expr(module: Module, expr: List[Instr],
                         expected: int, where: str) -> None:
    """Constant expressions: a single const or an imported-global get."""
    if len(expr) != 1:
        raise ValidationError(f"{where}: constant expression must be a "
                              "single instruction")
    ins = expr[0]
    const_types = {op.I32_CONST: I32, op.I64_CONST: I64,
                   op.F32_CONST: F32, op.F64_CONST: F64}
    if ins[0] in const_types:
        if const_types[ins[0]] != expected:
            raise ValidationError(f"{where}: initializer type mismatch")
        return
    if ins[0] == op.GLOBAL_GET:
        if ins[1] >= module.num_imported_globals:
            raise ValidationError(f"{where}: initializer may only reference "
                                  "imported globals")
        gt = module.global_type(ins[1])
        if gt.mutable or gt.valtype != expected:
            raise ValidationError(f"{where}: initializer global type mismatch")
        return
    raise ValidationError(f"{where}: non-constant initializer instruction "
                          f"{op.name_of(ins[0])}")


def validate_module(module: Module) -> None:
    """Validate a whole module; raises :class:`ValidationError` on failure."""
    num_memories = len(module.memories) + len(module.imported(KIND_MEMORY))
    num_tables = len(module.tables) + len(module.imported(KIND_TABLE))
    if num_memories > 1:
        raise ValidationError("at most one memory is allowed (MVP)")
    if num_tables > 1:
        raise ValidationError("at most one table is allowed (MVP)")

    for imp in module.imports:
        if imp.kind == KIND_FUNC and imp.desc >= len(module.types):
            raise ValidationError(
                f"import {imp.module}.{imp.name}: type index out of range")

    for i, func in enumerate(module.functions):
        if func.type_index >= len(module.types):
            raise ValidationError(f"function {i}: type index out of range")
        ftype = module.types[func.type_index]
        locals_ = list(ftype.params) + func.local_types()
        where = func.name or f"func[{i + module.num_imported_funcs}]"
        _BodyValidator(module, locals_, ftype.results, where).run(func.body)

    for i, glob in enumerate(module.globals):
        _validate_const_expr(module, glob.init, glob.gtype.valtype,
                             f"global[{i}]")

    seen_exports = set()
    limits = {KIND_FUNC: module.num_funcs,
              KIND_TABLE: num_tables,
              KIND_MEMORY: num_memories,
              KIND_GLOBAL: module.num_globals}
    for export in module.exports:
        if export.name in seen_exports:
            raise ValidationError(f"duplicate export name {export.name!r}")
        seen_exports.add(export.name)
        if export.index >= limits[export.kind]:
            raise ValidationError(f"export {export.name!r}: index out of range")

    if module.start is not None:
        if module.start >= module.num_funcs:
            raise ValidationError("start function index out of range")
        ftype = module.func_type(module.start)
        if ftype.params or ftype.results:
            raise ValidationError("start function must have type [] -> []")

    for i, seg in enumerate(module.elements):
        if seg.table_index >= num_tables:
            raise ValidationError(f"element segment {i}: no such table")
        _validate_const_expr(module, seg.offset, I32, f"elem[{i}].offset")
        for func_index in seg.func_indices:
            if func_index >= module.num_funcs:
                raise ValidationError(
                    f"element segment {i}: function index out of range")

    for i, seg in enumerate(module.data):
        if seg.memory_index >= num_memories:
            raise ValidationError(f"data segment {i}: no such memory")
        _validate_const_expr(module, seg.offset, I32, f"data[{i}].offset")
