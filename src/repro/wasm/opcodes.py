"""The WebAssembly MVP opcode space.

This module is the single source of truth for the instruction set: numeric
opcode values, mnemonic names, immediate shapes, and type signatures.  The
encoder, decoder, validator, interpreters, and JIT backends all key off the
tables defined here, so adding an instruction means adding it exactly once.

Instructions are represented throughout the substrate as plain tuples
``(opcode, *immediates)`` — cheap to build, hash, and dispatch on.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

# --- Control instructions -------------------------------------------------
UNREACHABLE = 0x00
NOP = 0x01
BLOCK = 0x02
LOOP = 0x03
IF = 0x04
ELSE = 0x05
END = 0x0B
BR = 0x0C
BR_IF = 0x0D
BR_TABLE = 0x0E
RETURN = 0x0F
CALL = 0x10
CALL_INDIRECT = 0x11

# --- Parametric -----------------------------------------------------------
DROP = 0x1A
SELECT = 0x1B

# --- Variable access ------------------------------------------------------
LOCAL_GET = 0x20
LOCAL_SET = 0x21
LOCAL_TEE = 0x22
GLOBAL_GET = 0x23
GLOBAL_SET = 0x24

# --- Memory ---------------------------------------------------------------
I32_LOAD = 0x28
I64_LOAD = 0x29
F32_LOAD = 0x2A
F64_LOAD = 0x2B
I32_LOAD8_S = 0x2C
I32_LOAD8_U = 0x2D
I32_LOAD16_S = 0x2E
I32_LOAD16_U = 0x2F
I64_LOAD8_S = 0x30
I64_LOAD8_U = 0x31
I64_LOAD16_S = 0x32
I64_LOAD16_U = 0x33
I64_LOAD32_S = 0x34
I64_LOAD32_U = 0x35
I32_STORE = 0x36
I64_STORE = 0x37
F32_STORE = 0x38
F64_STORE = 0x39
I32_STORE8 = 0x3A
I32_STORE16 = 0x3B
I64_STORE8 = 0x3C
I64_STORE16 = 0x3D
I64_STORE32 = 0x3E
MEMORY_SIZE = 0x3F
MEMORY_GROW = 0x40

# --- Constants ------------------------------------------------------------
I32_CONST = 0x41
I64_CONST = 0x42
F32_CONST = 0x43
F64_CONST = 0x44

# --- i32 comparisons ------------------------------------------------------
I32_EQZ = 0x45
I32_EQ = 0x46
I32_NE = 0x47
I32_LT_S = 0x48
I32_LT_U = 0x49
I32_GT_S = 0x4A
I32_GT_U = 0x4B
I32_LE_S = 0x4C
I32_LE_U = 0x4D
I32_GE_S = 0x4E
I32_GE_U = 0x4F

# --- i64 comparisons ------------------------------------------------------
I64_EQZ = 0x50
I64_EQ = 0x51
I64_NE = 0x52
I64_LT_S = 0x53
I64_LT_U = 0x54
I64_GT_S = 0x55
I64_GT_U = 0x56
I64_LE_S = 0x57
I64_LE_U = 0x58
I64_GE_S = 0x59
I64_GE_U = 0x5A

# --- f32 comparisons ------------------------------------------------------
F32_EQ = 0x5B
F32_NE = 0x5C
F32_LT = 0x5D
F32_GT = 0x5E
F32_LE = 0x5F
F32_GE = 0x60

# --- f64 comparisons ------------------------------------------------------
F64_EQ = 0x61
F64_NE = 0x62
F64_LT = 0x63
F64_GT = 0x64
F64_LE = 0x65
F64_GE = 0x66

# --- i32 arithmetic -------------------------------------------------------
I32_CLZ = 0x67
I32_CTZ = 0x68
I32_POPCNT = 0x69
I32_ADD = 0x6A
I32_SUB = 0x6B
I32_MUL = 0x6C
I32_DIV_S = 0x6D
I32_DIV_U = 0x6E
I32_REM_S = 0x6F
I32_REM_U = 0x70
I32_AND = 0x71
I32_OR = 0x72
I32_XOR = 0x73
I32_SHL = 0x74
I32_SHR_S = 0x75
I32_SHR_U = 0x76
I32_ROTL = 0x77
I32_ROTR = 0x78

# --- i64 arithmetic -------------------------------------------------------
I64_CLZ = 0x79
I64_CTZ = 0x7A
I64_POPCNT = 0x7B
I64_ADD = 0x7C
I64_SUB = 0x7D
I64_MUL = 0x7E
I64_DIV_S = 0x7F
I64_DIV_U = 0x80
I64_REM_S = 0x81
I64_REM_U = 0x82
I64_AND = 0x83
I64_OR = 0x84
I64_XOR = 0x85
I64_SHL = 0x86
I64_SHR_S = 0x87
I64_SHR_U = 0x88
I64_ROTL = 0x89
I64_ROTR = 0x8A

# --- f32 arithmetic -------------------------------------------------------
F32_ABS = 0x8B
F32_NEG = 0x8C
F32_CEIL = 0x8D
F32_FLOOR = 0x8E
F32_TRUNC = 0x8F
F32_NEAREST = 0x90
F32_SQRT = 0x91
F32_ADD = 0x92
F32_SUB = 0x93
F32_MUL = 0x94
F32_DIV = 0x95
F32_MIN = 0x96
F32_MAX = 0x97
F32_COPYSIGN = 0x98

# --- f64 arithmetic -------------------------------------------------------
F64_ABS = 0x99
F64_NEG = 0x9A
F64_CEIL = 0x9B
F64_FLOOR = 0x9C
F64_TRUNC = 0x9D
F64_NEAREST = 0x9E
F64_SQRT = 0x9F
F64_ADD = 0xA0
F64_SUB = 0xA1
F64_MUL = 0xA2
F64_DIV = 0xA3
F64_MIN = 0xA4
F64_MAX = 0xA5
F64_COPYSIGN = 0xA6

# --- Conversions ----------------------------------------------------------
I32_WRAP_I64 = 0xA7
I32_TRUNC_F32_S = 0xA8
I32_TRUNC_F32_U = 0xA9
I32_TRUNC_F64_S = 0xAA
I32_TRUNC_F64_U = 0xAB
I64_EXTEND_I32_S = 0xAC
I64_EXTEND_I32_U = 0xAD
I64_TRUNC_F32_S = 0xAE
I64_TRUNC_F32_U = 0xAF
I64_TRUNC_F64_S = 0xB0
I64_TRUNC_F64_U = 0xB1
F32_CONVERT_I32_S = 0xB2
F32_CONVERT_I32_U = 0xB3
F32_CONVERT_I64_S = 0xB4
F32_CONVERT_I64_U = 0xB5
F32_DEMOTE_F64 = 0xB6
F64_CONVERT_I32_S = 0xB7
F64_CONVERT_I32_U = 0xB8
F64_CONVERT_I64_S = 0xB9
F64_CONVERT_I64_U = 0xBA
F64_PROMOTE_F32 = 0xBB
I32_REINTERPRET_F32 = 0xBC
I64_REINTERPRET_F64 = 0xBD
F32_REINTERPRET_I32 = 0xBE
F64_REINTERPRET_I64 = 0xBF

# ---------------------------------------------------------------------------
# Immediate shapes.  Every opcode maps to a short code understood by the
# encoder/decoder:
#   ''        no immediates
#   'bt'      block type (0x40 or a value type byte)
#   'u'       one u32 index (locals, globals, functions, labels)
#   'uu'      two u32s (call_indirect: type index + table; memarg: align+offset)
#   'tbl'     br_table: vector of labels + default
#   'i32'     one signed 32-bit constant
#   'i64'     one signed 64-bit constant
#   'f32'     one IEEE single constant
#   'f64'     one IEEE double constant
#   'mem'     memarg (align, offset)
#   'zero'    single reserved zero byte (memory.size / memory.grow)
# ---------------------------------------------------------------------------

IMMEDIATES: Dict[int, str] = {
    UNREACHABLE: "", NOP: "",
    BLOCK: "bt", LOOP: "bt", IF: "bt", ELSE: "", END: "",
    BR: "u", BR_IF: "u", BR_TABLE: "tbl", RETURN: "",
    CALL: "u", CALL_INDIRECT: "uu",
    DROP: "", SELECT: "",
    LOCAL_GET: "u", LOCAL_SET: "u", LOCAL_TEE: "u",
    GLOBAL_GET: "u", GLOBAL_SET: "u",
    MEMORY_SIZE: "zero", MEMORY_GROW: "zero",
    I32_CONST: "i32", I64_CONST: "i64", F32_CONST: "f32", F64_CONST: "f64",
}
for _op in range(I32_LOAD, I64_STORE32 + 1):
    IMMEDIATES[_op] = "mem"
for _op in list(range(I32_EQZ, F64_GE + 1)) + list(range(I32_CLZ, F64_REINTERPRET_I64 + 1)):
    IMMEDIATES[_op] = ""

# ---------------------------------------------------------------------------
# Value-type signatures for the "simple" (non-control, non-variable)
# instructions, used by the validator: maps opcode -> (params, results)
# where types are the value-type bytes from repro.wasm.types.
# ---------------------------------------------------------------------------

I32, I64, F32, F64 = 0x7F, 0x7E, 0x7D, 0x7C

_UN = lambda t: ((t,), (t,))
_BIN = lambda t: ((t, t), (t,))
_CMP = lambda t: ((t, t), (I32,))
_TEST = lambda t: ((t,), (I32,))
_CVT = lambda src, dst: ((src,), (dst,))

SIGNATURES: Dict[int, Tuple[Tuple[int, ...], Tuple[int, ...]]] = {}

for _op in (I32_CLZ, I32_CTZ, I32_POPCNT):
    SIGNATURES[_op] = _UN(I32)
for _op in range(I32_ADD, I32_ROTR + 1):
    SIGNATURES[_op] = _BIN(I32)
for _op in (I64_CLZ, I64_CTZ, I64_POPCNT):
    SIGNATURES[_op] = _UN(I64)
for _op in range(I64_ADD, I64_ROTR + 1):
    SIGNATURES[_op] = _BIN(I64)
for _op in range(F32_ABS, F32_SQRT + 1):
    SIGNATURES[_op] = _UN(F32)
for _op in range(F32_ADD, F32_COPYSIGN + 1):
    SIGNATURES[_op] = _BIN(F32)
for _op in range(F64_ABS, F64_SQRT + 1):
    SIGNATURES[_op] = _UN(F64)
for _op in range(F64_ADD, F64_COPYSIGN + 1):
    SIGNATURES[_op] = _BIN(F64)

SIGNATURES[I32_EQZ] = _TEST(I32)
for _op in range(I32_EQ, I32_GE_U + 1):
    SIGNATURES[_op] = _CMP(I32)
SIGNATURES[I64_EQZ] = _TEST(I64)
for _op in range(I64_EQ, I64_GE_U + 1):
    SIGNATURES[_op] = _CMP(I64)
for _op in range(F32_EQ, F32_GE + 1):
    SIGNATURES[_op] = _CMP(F32)
for _op in range(F64_EQ, F64_GE + 1):
    SIGNATURES[_op] = _CMP(F64)

SIGNATURES[I32_CONST] = ((), (I32,))
SIGNATURES[I64_CONST] = ((), (I64,))
SIGNATURES[F32_CONST] = ((), (F32,))
SIGNATURES[F64_CONST] = ((), (F64,))

SIGNATURES[I32_WRAP_I64] = _CVT(I64, I32)
SIGNATURES[I32_TRUNC_F32_S] = _CVT(F32, I32)
SIGNATURES[I32_TRUNC_F32_U] = _CVT(F32, I32)
SIGNATURES[I32_TRUNC_F64_S] = _CVT(F64, I32)
SIGNATURES[I32_TRUNC_F64_U] = _CVT(F64, I32)
SIGNATURES[I64_EXTEND_I32_S] = _CVT(I32, I64)
SIGNATURES[I64_EXTEND_I32_U] = _CVT(I32, I64)
SIGNATURES[I64_TRUNC_F32_S] = _CVT(F32, I64)
SIGNATURES[I64_TRUNC_F32_U] = _CVT(F32, I64)
SIGNATURES[I64_TRUNC_F64_S] = _CVT(F64, I64)
SIGNATURES[I64_TRUNC_F64_U] = _CVT(F64, I64)
SIGNATURES[F32_CONVERT_I32_S] = _CVT(I32, F32)
SIGNATURES[F32_CONVERT_I32_U] = _CVT(I32, F32)
SIGNATURES[F32_CONVERT_I64_S] = _CVT(I64, F32)
SIGNATURES[F32_CONVERT_I64_U] = _CVT(I64, F32)
SIGNATURES[F32_DEMOTE_F64] = _CVT(F64, F32)
SIGNATURES[F64_CONVERT_I32_S] = _CVT(I32, F64)
SIGNATURES[F64_CONVERT_I32_U] = _CVT(I32, F64)
SIGNATURES[F64_CONVERT_I64_S] = _CVT(I64, F64)
SIGNATURES[F64_CONVERT_I64_U] = _CVT(I64, F64)
SIGNATURES[F64_PROMOTE_F32] = _CVT(F32, F64)
SIGNATURES[I32_REINTERPRET_F32] = _CVT(F32, I32)
SIGNATURES[I64_REINTERPRET_F64] = _CVT(F64, I64)
SIGNATURES[F32_REINTERPRET_I32] = _CVT(I32, F32)
SIGNATURES[F64_REINTERPRET_I64] = _CVT(I64, F64)

# Memory access signatures: (address:i32 [, value]) -> [loaded]
_LOAD_TYPE = {
    I32_LOAD: I32, I64_LOAD: I64, F32_LOAD: F32, F64_LOAD: F64,
    I32_LOAD8_S: I32, I32_LOAD8_U: I32, I32_LOAD16_S: I32, I32_LOAD16_U: I32,
    I64_LOAD8_S: I64, I64_LOAD8_U: I64, I64_LOAD16_S: I64, I64_LOAD16_U: I64,
    I64_LOAD32_S: I64, I64_LOAD32_U: I64,
}
_STORE_TYPE = {
    I32_STORE: I32, I64_STORE: I64, F32_STORE: F32, F64_STORE: F64,
    I32_STORE8: I32, I32_STORE16: I32,
    I64_STORE8: I64, I64_STORE16: I64, I64_STORE32: I64,
}
for _op, _t in _LOAD_TYPE.items():
    SIGNATURES[_op] = ((I32,), (_t,))
for _op, _t in _STORE_TYPE.items():
    SIGNATURES[_op] = ((I32, _t), ())
SIGNATURES[MEMORY_SIZE] = ((), (I32,))
SIGNATURES[MEMORY_GROW] = ((I32,), (I32,))

# Width in bytes of each memory access, used by traps and the cache model.
ACCESS_WIDTH: Dict[int, int] = {
    I32_LOAD: 4, I64_LOAD: 8, F32_LOAD: 4, F64_LOAD: 8,
    I32_LOAD8_S: 1, I32_LOAD8_U: 1, I32_LOAD16_S: 2, I32_LOAD16_U: 2,
    I64_LOAD8_S: 1, I64_LOAD8_U: 1, I64_LOAD16_S: 2, I64_LOAD16_U: 2,
    I64_LOAD32_S: 4, I64_LOAD32_U: 4,
    I32_STORE: 4, I64_STORE: 8, F32_STORE: 4, F64_STORE: 8,
    I32_STORE8: 1, I32_STORE16: 2,
    I64_STORE8: 1, I64_STORE16: 2, I64_STORE32: 4,
}

IS_LOAD = frozenset(_LOAD_TYPE)
IS_STORE = frozenset(_STORE_TYPE)

# ---------------------------------------------------------------------------
# Mnemonic names, for disassembly, diagnostics, and the WAT printer.
# ---------------------------------------------------------------------------

NAMES: Dict[int, str] = {}

# Non-numeric instructions whose WAT mnemonics keep their underscores or use
# dots in a non-derivable way.
_NAME_OVERRIDES = {
    BR: "br", BR_IF: "br_if", BR_TABLE: "br_table",
    CALL: "call", CALL_INDIRECT: "call_indirect",
    LOCAL_GET: "local.get", LOCAL_SET: "local.set", LOCAL_TEE: "local.tee",
    GLOBAL_GET: "global.get", GLOBAL_SET: "global.set",
    MEMORY_SIZE: "memory.size", MEMORY_GROW: "memory.grow",
}


def _register_names() -> None:
    prefixes = {"I32": "i32.", "I64": "i64.", "F32": "f32.", "F64": "f64."}
    for name, value in list(globals().items()):
        if not isinstance(value, int) or name.startswith("_"):
            continue
        if name in ("I32", "I64", "F32", "F64"):
            continue
        mnem = name.lower()
        for pref, dotted in prefixes.items():
            if name.startswith(pref + "_"):
                mnem = dotted + name[len(pref) + 1:].lower()
                break
        if value not in NAMES:
            NAMES[value] = mnem
    NAMES.update(_NAME_OVERRIDES)


_register_names()


def name_of(opcode: int) -> str:
    """Human-readable mnemonic for an opcode (hex fallback for unknowns)."""
    return NAMES.get(opcode, f"0x{opcode:02x}")


def is_known(opcode: int) -> bool:
    """True if the opcode is part of the supported MVP subset."""
    return opcode in IMMEDIATES
