"""Fluent construction of WebAssembly modules.

The MiniC code generator and the test suite both assemble modules through
this builder rather than poking :class:`Module` fields directly.  It handles
type interning, the imports-first index spaces, label management for
structured control flow, and (optionally) validates the finished module.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import WasmError
from . import opcodes as op
from .module import (KIND_FUNC, KIND_GLOBAL, KIND_MEMORY, KIND_TABLE,
                     DataSegment, ElementSegment, Export, Function, Global,
                     Import, Instr, Module)
from .types import VOID, FuncType, GlobalType, Limits
from .validator import validate_module


class FunctionBuilder:
    """Builds one function body with structured-control-flow helpers."""

    def __init__(self, module_builder: "ModuleBuilder", name: str,
                 ftype: FuncType, func_index: int):
        self._mb = module_builder
        self.name = name
        self.ftype = ftype
        self.func_index = func_index
        self.body: List[Instr] = []
        self._local_types: List[int] = []
        self._label_stack: List[str] = []

    # -- locals ---------------------------------------------------------

    def add_local(self, valtype: int) -> int:
        """Declare an extra local; returns its index (params included)."""
        index = len(self.ftype.params) + len(self._local_types)
        self._local_types.append(valtype)
        return index

    @property
    def num_locals(self) -> int:
        return len(self.ftype.params) + len(self._local_types)

    # -- raw emission -----------------------------------------------------

    def emit(self, opcode: int, *immediates) -> "FunctionBuilder":
        self.body.append((opcode, *immediates))
        return self

    def extend(self, instrs: Sequence[Instr]) -> "FunctionBuilder":
        self.body.extend(instrs)
        return self

    # -- constants / variables ------------------------------------------

    def i32_const(self, value: int) -> "FunctionBuilder":
        return self.emit(op.I32_CONST, value)

    def i64_const(self, value: int) -> "FunctionBuilder":
        return self.emit(op.I64_CONST, value)

    def f32_const(self, value: float) -> "FunctionBuilder":
        return self.emit(op.F32_CONST, value)

    def f64_const(self, value: float) -> "FunctionBuilder":
        return self.emit(op.F64_CONST, value)

    def local_get(self, index: int) -> "FunctionBuilder":
        return self.emit(op.LOCAL_GET, index)

    def local_set(self, index: int) -> "FunctionBuilder":
        return self.emit(op.LOCAL_SET, index)

    def local_tee(self, index: int) -> "FunctionBuilder":
        return self.emit(op.LOCAL_TEE, index)

    def global_get(self, index: int) -> "FunctionBuilder":
        return self.emit(op.GLOBAL_GET, index)

    def global_set(self, index: int) -> "FunctionBuilder":
        return self.emit(op.GLOBAL_SET, index)

    # -- structured control -----------------------------------------------
    # Labels are tracked by name so codegen can emit branches by label name
    # and get the correct relative depth at emission time.

    def block(self, label: str, result: int = VOID) -> "FunctionBuilder":
        self._label_stack.append(label)
        return self.emit(op.BLOCK, result)

    def loop(self, label: str, result: int = VOID) -> "FunctionBuilder":
        self._label_stack.append(label)
        return self.emit(op.LOOP, result)

    def if_(self, label: str, result: int = VOID) -> "FunctionBuilder":
        self._label_stack.append(label)
        return self.emit(op.IF, result)

    def else_(self) -> "FunctionBuilder":
        return self.emit(op.ELSE)

    def end(self) -> "FunctionBuilder":
        if not self._label_stack:
            raise WasmError(f"{self.name}: end without open label")
        self._label_stack.pop()
        return self.emit(op.END)

    def depth_of(self, label: str) -> int:
        """Relative branch depth of a named open label."""
        for depth, open_label in enumerate(reversed(self._label_stack)):
            if open_label == label:
                return depth
        raise WasmError(f"{self.name}: unknown label {label!r}")

    def br(self, label: str) -> "FunctionBuilder":
        return self.emit(op.BR, self.depth_of(label))

    def br_if(self, label: str) -> "FunctionBuilder":
        return self.emit(op.BR_IF, self.depth_of(label))

    def br_table(self, labels: Sequence[str], default: str) -> "FunctionBuilder":
        return self.emit(op.BR_TABLE,
                         [self.depth_of(l) for l in labels],
                         self.depth_of(default))

    def call(self, func_index: int) -> "FunctionBuilder":
        return self.emit(op.CALL, func_index)

    def call_named(self, name: str) -> "FunctionBuilder":
        return self.emit(op.CALL, self._mb.func_index_of(name))

    def ret(self) -> "FunctionBuilder":
        return self.emit(op.RETURN)

    def finish(self) -> Function:
        if self._label_stack:
            raise WasmError(f"{self.name}: unclosed labels {self._label_stack}")
        decls: List[Tuple[int, int]] = []
        for vt in self._local_types:
            if decls and decls[-1][1] == vt:
                decls[-1] = (decls[-1][0] + 1, vt)
            else:
                decls.append((1, vt))
        return Function(self._mb.intern_type(self.ftype), decls,
                        self.body, self.name)


class ModuleBuilder:
    """Accumulates a module definition and materializes it on demand."""

    def __init__(self):
        self._types: List[FuncType] = []
        self._type_index: Dict[FuncType, int] = {}
        self._imports: List[Import] = []
        self._func_builders: List[FunctionBuilder] = []
        self._func_names: Dict[str, int] = {}
        self._globals: List[Global] = []
        self._global_names: Dict[str, int] = {}
        self._exports: List[Export] = []
        self._memory: Optional[Limits] = None
        self._table: Optional[Limits] = None
        self._elements: List[ElementSegment] = []
        self._data: List[DataSegment] = []
        self._start: Optional[str] = None
        self._sealed_imports = False

    # -- types -------------------------------------------------------------

    def intern_type(self, ftype: FuncType) -> int:
        index = self._type_index.get(ftype)
        if index is None:
            index = len(self._types)
            self._types.append(ftype)
            self._type_index[ftype] = index
        return index

    # -- imports (must precede function definitions) -----------------------

    def import_function(self, module: str, name: str, ftype: FuncType,
                        local_name: Optional[str] = None) -> int:
        if self._sealed_imports:
            raise WasmError("imports must be declared before functions")
        index = sum(1 for i in self._imports if i.kind == KIND_FUNC)
        self._imports.append(Import(module, name, KIND_FUNC,
                                    self.intern_type(ftype)))
        self._func_names[local_name or f"{module}.{name}"] = index
        return index

    # -- functions -----------------------------------------------------------

    def function(self, name: str, params: Sequence[int] = (),
                 results: Sequence[int] = (),
                 export: bool = False) -> FunctionBuilder:
        self._sealed_imports = True
        ftype = FuncType(tuple(params), tuple(results))
        num_imported = sum(1 for i in self._imports if i.kind == KIND_FUNC)
        if name in self._func_names:
            raise WasmError(f"duplicate function name {name!r}")
        num_reserved = sum(1 for i in self._func_names.values()
                           if i >= num_imported)
        index = num_imported + num_reserved
        self._func_names[name] = index
        fb = FunctionBuilder(self, name, ftype, index)
        self._func_builders.append(fb)
        if export:
            self._exports.append(Export(name, KIND_FUNC, index))
        return fb

    def reserve_function(self, name: str) -> int:
        """Reserve an index for a function defined later (forward calls)."""
        self._sealed_imports = True
        if name in self._func_names:
            return self._func_names[name]
        num_imported = sum(1 for i in self._imports if i.kind == KIND_FUNC)
        reserved = [n for n, i in self._func_names.items() if i >= num_imported]
        index = num_imported + len(reserved)
        self._func_names[name] = index
        return index

    def define_reserved(self, name: str, params: Sequence[int] = (),
                        results: Sequence[int] = (),
                        export: bool = False) -> FunctionBuilder:
        """Create the builder for a previously reserved function."""
        index = self._func_names.get(name)
        if index is None:
            return self.function(name, params, results, export)
        ftype = FuncType(tuple(params), tuple(results))
        fb = FunctionBuilder(self, name, ftype, index)
        self._func_builders.append(fb)
        if export:
            self._exports.append(Export(name, KIND_FUNC, index))
        return fb

    def func_index_of(self, name: str) -> int:
        index = self._func_names.get(name)
        if index is None:
            raise WasmError(f"unknown function {name!r}")
        return index

    # -- globals / memory / table / segments --------------------------------

    def add_global(self, name: str, valtype: int, mutable: bool,
                   init_instr: Instr) -> int:
        index = len(self._globals)
        self._globals.append(Global(GlobalType(valtype, mutable), [init_instr]))
        self._global_names[name] = index
        return index

    def global_index_of(self, name: str) -> int:
        if name not in self._global_names:
            raise WasmError(f"unknown global {name!r}")
        return self._global_names[name]

    def set_memory(self, minimum_pages: int,
                   maximum_pages: Optional[int] = None,
                   export_as: Optional[str] = "memory") -> None:
        self._memory = Limits(minimum_pages, maximum_pages)
        if export_as:
            self._exports.append(Export(export_as, KIND_MEMORY, 0))

    def set_table(self, minimum: int, maximum: Optional[int] = None) -> None:
        self._table = Limits(minimum, maximum)

    def add_element(self, offset: int, func_names: Sequence[str]) -> None:
        indices = [self.func_index_of(n) for n in func_names]
        if self._table is None:
            self.set_table(offset + len(indices))
        self._elements.append(
            ElementSegment(0, [(op.I32_CONST, offset)], indices))

    def add_data(self, offset: int, data: bytes) -> None:
        self._data.append(DataSegment(0, [(op.I32_CONST, offset)], data))

    def set_start(self, name: str) -> None:
        self._start = name

    def export_global(self, name: str, global_name: str) -> None:
        self._exports.append(
            Export(name, KIND_GLOBAL, self.global_index_of(global_name)))

    # -- materialization ------------------------------------------------------

    def build(self, validate: bool = True) -> Module:
        module = Module()
        module.imports = list(self._imports)

        # Defined functions must land at their reserved indices.
        num_imported = sum(1 for i in self._imports if i.kind == KIND_FUNC)
        ordered = sorted(self._func_builders,
                         key=lambda fb: self._func_names[fb.name])
        for expected, fb in enumerate(ordered):
            actual = self._func_names[fb.name]
            if actual != expected + num_imported:
                raise WasmError(
                    f"function {fb.name!r} reserved at index {actual} but "
                    f"defined at {expected + num_imported}; a reserved "
                    "function was never defined")
        module.functions = [fb.finish() for fb in ordered]
        module.types = list(self._types)

        module.globals = list(self._globals)
        if self._memory is not None:
            module.memories = [self._memory]
        if self._table is not None:
            module.tables = [self._table]
        module.exports = list(self._exports)
        module.elements = list(self._elements)
        module.data = list(self._data)
        if self._start is not None:
            module.start = self.func_index_of(self._start)
        if validate:
            validate_module(module)
        return module
