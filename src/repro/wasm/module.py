"""In-memory representation of a WebAssembly module.

This mirrors the section structure of the binary format.  Function bodies
are stored as flat instruction lists — tuples of ``(opcode, *immediates)``
with the structured ``block``/``loop``/``if``/``else``/``end`` markers kept
inline, exactly as they appear in the binary.  Each consumer (validator,
interpreters, JIT backends) derives its own view (side tables, CFGs) from
this flat form, just like real runtimes decode the same bytes differently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .types import FuncType, GlobalType, Limits

Instr = tuple  # (opcode:int, *immediates)

# Export/import kind codes from the binary format.
KIND_FUNC = 0
KIND_TABLE = 1
KIND_MEMORY = 2
KIND_GLOBAL = 3

KIND_NAMES = {KIND_FUNC: "func", KIND_TABLE: "table",
              KIND_MEMORY: "memory", KIND_GLOBAL: "global"}


@dataclass
class Import:
    """A single import: ``module.name`` of a given kind.

    ``desc`` is a type index for functions, :class:`Limits` for
    tables/memories, and :class:`GlobalType` for globals.
    """

    module: str
    name: str
    kind: int
    desc: object


@dataclass
class Export:
    """A single export, pointing at an index in the joint index space."""

    name: str
    kind: int
    index: int


@dataclass
class Global:
    """A module-defined global with a constant initializer expression."""

    gtype: GlobalType
    init: List[Instr] = field(default_factory=list)


@dataclass
class ElementSegment:
    """An active element segment initializing the funcref table."""

    table_index: int
    offset: List[Instr]
    func_indices: List[int] = field(default_factory=list)


@dataclass
class DataSegment:
    """An active data segment copied into linear memory at instantiation."""

    memory_index: int
    offset: List[Instr]
    data: bytes = b""


@dataclass
class Function:
    """A module-defined function body.

    ``local_decls`` lists ``(count, valtype)`` runs as in the binary format;
    parameters are *not* included (they come from the signature).
    """

    type_index: int
    local_decls: List[Tuple[int, int]] = field(default_factory=list)
    body: List[Instr] = field(default_factory=list)
    name: str = ""

    def local_types(self) -> List[int]:
        """Expand the run-length local declarations into a flat type list."""
        out: List[int] = []
        for count, vt in self.local_decls:
            out.extend([vt] * count)
        return out


@dataclass
class Module:
    """A complete decoded (or built) module."""

    types: List[FuncType] = field(default_factory=list)
    imports: List[Import] = field(default_factory=list)
    functions: List[Function] = field(default_factory=list)
    tables: List[Limits] = field(default_factory=list)
    memories: List[Limits] = field(default_factory=list)
    globals: List[Global] = field(default_factory=list)
    exports: List[Export] = field(default_factory=list)
    start: Optional[int] = None
    elements: List[ElementSegment] = field(default_factory=list)
    data: List[DataSegment] = field(default_factory=list)
    custom_sections: List[Tuple[str, bytes]] = field(default_factory=list)

    # ---- index-space helpers -------------------------------------------
    # Imports precede module definitions in each index space.

    def imported(self, kind: int) -> List[Import]:
        return [imp for imp in self.imports if imp.kind == kind]

    @property
    def num_imported_funcs(self) -> int:
        return sum(1 for imp in self.imports if imp.kind == KIND_FUNC)

    @property
    def num_imported_globals(self) -> int:
        return sum(1 for imp in self.imports if imp.kind == KIND_GLOBAL)

    def func_type(self, func_index: int) -> FuncType:
        """Signature of a function in the joint (imports-first) index space."""
        imported = self.imported(KIND_FUNC)
        if func_index < len(imported):
            return self.types[imported[func_index].desc]
        return self.types[self.functions[func_index - len(imported)].type_index]

    def global_type(self, global_index: int) -> GlobalType:
        imported = self.imported(KIND_GLOBAL)
        if global_index < len(imported):
            return imported[global_index].desc
        return self.globals[global_index - len(imported)].gtype

    @property
    def num_funcs(self) -> int:
        return self.num_imported_funcs + len(self.functions)

    @property
    def num_globals(self) -> int:
        return self.num_imported_globals + len(self.globals)

    def export_map(self) -> Dict[str, Export]:
        return {e.name: e for e in self.exports}

    def find_export(self, name: str, kind: int) -> Optional[Export]:
        for e in self.exports:
            if e.name == name and e.kind == kind:
                return e
        return None

    def body_size(self) -> int:
        """Total number of instructions across all defined function bodies."""
        return sum(len(f.body) for f in self.functions)
