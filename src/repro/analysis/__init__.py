"""Static analysis over decoded Wasm modules and MiniC translation units.

The package has three layers:

* :mod:`repro.analysis.cfg` rebuilds a basic-block control-flow graph from
  the structured (block/loop/if) control flow of a function body.
* :mod:`repro.analysis.dataflow` is a generic worklist fixpoint engine that
  works on any CFG-shaped object (the Wasm CFG above, or the MiniC
  statement graph in :mod:`repro.analysis.sanitizer`).
* Client analyses: interval/range analysis (:mod:`repro.analysis.ranges`,
  which powers LLVM-tier bounds-check elimination in the JIT model),
  liveness (:mod:`repro.analysis.liveness`), dead-code/reachability (part
  of the CFG), static code metrics (:mod:`repro.analysis.metrics`) and the
  MiniC sanitizer (:mod:`repro.analysis.sanitizer`).
* The whole-module auditor: interprocedural call graph
  (:mod:`repro.analysis.callgraph`), static cost model
  (:mod:`repro.analysis.costmodel`), Wasm lints
  (:mod:`repro.analysis.lints`) and the orchestrating audit/baseline
  layer (:mod:`repro.analysis.audit`) behind ``wabench audit`` and
  ``wasicc --audit``.
"""

from importlib import import_module

# Lazily resolved exports (PEP 562): the range analysis is on the hot
# run path (the optimizing JIT tier consults it per module), but the
# sanitizer, metrics, and liveness clients are tooling-only — importing
# them eagerly would put their cost on every ``wabench run``.
_EXPORTS = {
    "BasicBlock": "cfg", "ControlFlowGraph": "cfg", "build_cfg": "cfg",
    "DataflowAnalysis": "dataflow", "solve": "dataflow",
    "live_variables": "liveness", "dead_stores": "liveness",
    "FunctionMetrics": "metrics", "ModuleMetrics": "metrics",
    "module_report": "metrics",
    "Interval": "ranges", "function_ranges": "ranges",
    "provable_inbounds": "ranges",
    "Finding": "sanitizer", "analyze_source": "sanitizer",
    "analyze_unit": "sanitizer",
    "CallGraph": "callgraph", "build_call_graph": "callgraph",
    "static_stack_bound": "callgraph",
    "CostReport": "costmodel", "FunctionCost": "costmodel",
    "cost_report": "costmodel", "compare_mix": "costmodel",
    "MIX_TOLERANCE": "costmodel",
    "Diagnostic": "lints", "lint_module": "lints",
    "LINT_VERSION": "lints",
    "ModuleAudit": "audit", "SuiteAudit": "audit",
    "audit_module": "audit", "audit_wasm": "audit",
    "audit_benchmark": "audit", "run_suite_audit": "audit",
    "compare_baseline": "audit", "AUDIT_VERSION": "audit",
}


def __getattr__(name):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(f".{module_name}", __name__), name)
    globals()[name] = value  # cache for subsequent lookups
    return value

__all__ = [
    "BasicBlock",
    "ControlFlowGraph",
    "build_cfg",
    "DataflowAnalysis",
    "solve",
    "live_variables",
    "dead_stores",
    "FunctionMetrics",
    "ModuleMetrics",
    "module_report",
    "Interval",
    "function_ranges",
    "provable_inbounds",
    "Finding",
    "analyze_source",
    "analyze_unit",
    "CallGraph",
    "build_call_graph",
    "static_stack_bound",
    "CostReport",
    "FunctionCost",
    "cost_report",
    "compare_mix",
    "MIX_TOLERANCE",
    "Diagnostic",
    "lint_module",
    "LINT_VERSION",
    "ModuleAudit",
    "SuiteAudit",
    "audit_module",
    "audit_wasm",
    "audit_benchmark",
    "run_suite_audit",
    "compare_baseline",
    "AUDIT_VERSION",
]
