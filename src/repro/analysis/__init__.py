"""Static analysis over decoded Wasm modules and MiniC translation units.

The package has three layers:

* :mod:`repro.analysis.cfg` rebuilds a basic-block control-flow graph from
  the structured (block/loop/if) control flow of a function body.
* :mod:`repro.analysis.dataflow` is a generic worklist fixpoint engine that
  works on any CFG-shaped object (the Wasm CFG above, or the MiniC
  statement graph in :mod:`repro.analysis.sanitizer`).
* Client analyses: interval/range analysis (:mod:`repro.analysis.ranges`,
  which powers LLVM-tier bounds-check elimination in the JIT model),
  liveness (:mod:`repro.analysis.liveness`), dead-code/reachability (part
  of the CFG), static code metrics (:mod:`repro.analysis.metrics`) and the
  MiniC sanitizer (:mod:`repro.analysis.sanitizer`).
"""

from .cfg import BasicBlock, ControlFlowGraph, build_cfg
from .dataflow import DataflowAnalysis, solve
from .liveness import dead_stores, live_variables
from .metrics import FunctionMetrics, ModuleMetrics, module_report
from .ranges import Interval, function_ranges, provable_inbounds
from .sanitizer import Finding, analyze_source, analyze_unit

__all__ = [
    "BasicBlock",
    "ControlFlowGraph",
    "build_cfg",
    "DataflowAnalysis",
    "solve",
    "live_variables",
    "dead_stores",
    "FunctionMetrics",
    "ModuleMetrics",
    "module_report",
    "Interval",
    "function_ranges",
    "provable_inbounds",
    "Finding",
    "analyze_source",
    "analyze_unit",
]
