"""Backward liveness of Wasm locals, plus a dead-store client.

A local is *live* at a point when some path to function exit reads it
(``local.get``) before writing it.  ``local.tee`` consumes a *stack*
value, not the local itself, so like ``local.set`` it is a pure
definition of the local.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from ..wasm import opcodes as op
from ..wasm.module import Function, Module
from . import dataflow
from .cfg import BasicBlock, ControlFlowGraph, build_cfg


class LivenessAnalysis(dataflow.DataflowAnalysis):
    direction = "backward"

    def __init__(self, cfg: ControlFlowGraph) -> None:
        self.cfg = cfg

    def boundary(self) -> FrozenSet[int]:
        return frozenset()

    def join(self, a: FrozenSet[int], b: FrozenSet[int]) -> FrozenSet[int]:
        return a | b

    def transfer(self, block: BasicBlock,
                 fact: FrozenSet[int]) -> FrozenSet[int]:
        live = set(fact)
        body = self.cfg.body
        for pc in range(block.end - 1, block.start - 1, -1):
            ins = body[pc]
            o = ins[0]
            if o in (op.LOCAL_SET, op.LOCAL_TEE):
                live.discard(ins[1])
            elif o == op.LOCAL_GET:
                live.add(ins[1])
        return frozenset(live)


def live_variables(module: Module, func: Function
                   ) -> Tuple[ControlFlowGraph, List, List]:
    """Solve liveness; returns ``(cfg, live_out, live_in)`` per block."""
    cfg = build_cfg(func, module)
    exit_facts, entry_facts = dataflow.solve(cfg, LivenessAnalysis(cfg))
    return cfg, exit_facts, entry_facts


def dead_stores(module: Module, func: Function) -> List[int]:
    """Pcs of ``local.set``/``local.tee`` whose value is never read.

    Only blocks on some path to the function exit are considered (a
    store inside a provably infinite loop has no liveness fact).
    """
    cfg, live_out, _ = live_variables(module, func)
    dead: List[int] = []
    body = cfg.body
    for block in cfg.blocks[:-1]:
        live = live_out[block.index]
        if live is None:
            continue
        live = set(live)
        for pc in range(block.end - 1, block.start - 1, -1):
            ins = body[pc]
            o = ins[0]
            if o in (op.LOCAL_SET, op.LOCAL_TEE):
                if ins[1] not in live:
                    dead.append(pc)
                live.discard(ins[1])
            elif o == op.LOCAL_GET:
                live.add(ins[1])
    dead.sort()
    return dead
