"""Generic worklist dataflow engine.

Works over any CFG-shaped object exposing ``blocks`` (each with
``index``/``succs``/``preds``), ``entry``, ``exit_index`` and ``rpo()``
— both the Wasm basic-block graph from :mod:`repro.analysis.cfg` and the
MiniC statement graph used by the sanitizer satisfy this protocol.

Facts use ``None`` as bottom ("no execution reaches here"); an analysis
never sees bottom in ``transfer``.  ``edge`` may *return* ``None`` to
mark an edge infeasible (e.g. a branch condition contradicting the
current interval environment), which simply removes its contribution
from the join.
"""

from __future__ import annotations

from collections import deque
from typing import Any, List, Optional, Tuple


class DataflowAnalysis:
    """Base class: subclasses define the lattice and transfer functions."""

    #: "forward" or "backward".
    direction = "forward"

    def boundary(self) -> Any:
        """Fact at the entry block (forward) or exit block (backward)."""
        raise NotImplementedError

    def join(self, a: Any, b: Any) -> Any:
        raise NotImplementedError

    def transfer(self, block: Any, fact: Any) -> Any:
        """Propagate ``fact`` through ``block`` (never called with None)."""
        raise NotImplementedError

    def edge(self, block: Any, succ_pos: int, fact: Any) -> Optional[Any]:
        """Refine ``fact`` along the edge to ``block.succs[succ_pos]``.

        Returning ``None`` declares the edge infeasible.
        """
        return fact

    def widen(self, old: Any, new: Any) -> Any:
        """Accelerate convergence once a block's input keeps growing."""
        return new

    def same(self, a: Any, b: Any) -> bool:
        return a == b


def solve(cfg: Any, analysis: DataflowAnalysis,
          widen_after: int = 3) -> Tuple[List[Any], List[Any]]:
    """Run ``analysis`` to fixpoint over ``cfg``.

    Returns ``(in_facts, out_facts)`` indexed by block; ``None`` entries
    are blocks no fact ever reached (dead code, or all edges infeasible).
    For backward analyses "in" is the fact at block *exit* and "out" the
    fact at block *entry* — i.e. in the direction of propagation.
    """
    forward = analysis.direction == "forward"
    blocks = cfg.blocks
    n = len(blocks)
    start = cfg.entry if forward else cfg.exit_index

    def flow_succs(block: Any) -> List[int]:
        return block.succs if forward else block.preds

    in_facts: List[Any] = [None] * n
    out_facts: List[Any] = [None] * n
    in_facts[start] = analysis.boundary()
    updates = [0] * n

    order = cfg.rpo()
    if not forward:
        order = list(reversed(order))
    priority = {bi: i for i, bi in enumerate(order)}
    work = deque(bi for bi in order)
    queued = set(work)

    while work:
        bi = work.popleft()
        queued.discard(bi)
        fact = in_facts[bi]
        if fact is None:
            continue
        new_out = analysis.transfer(blocks[bi], fact)
        if out_facts[bi] is not None and analysis.same(out_facts[bi], new_out):
            continue
        out_facts[bi] = new_out
        for pos, succ in enumerate(flow_succs(blocks[bi])):
            edge_fact = analysis.edge(blocks[bi], pos, new_out)
            if edge_fact is None:
                continue
            old = in_facts[succ]
            merged = edge_fact if old is None \
                else analysis.join(old, edge_fact)
            if old is not None and analysis.same(old, merged):
                continue
            updates[succ] += 1
            # Widen only at join points: every cycle flows through a
            # block with >= 2 predecessors, so this both guarantees
            # termination and leaves branch-refined facts on straight-
            # line edges untouched.
            joins = blocks[succ].preds if forward else blocks[succ].succs
            if old is not None and updates[succ] > widen_after \
                    and len(joins) > 1:
                merged = analysis.widen(old, merged)
                if analysis.same(old, merged):
                    continue
            in_facts[succ] = merged
            if succ not in queued and succ in priority:
                work.append(succ)
                queued.add(succ)
    return in_facts, out_facts
