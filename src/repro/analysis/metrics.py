"""Static code metrics over decoded Wasm modules.

Per function: opcode-category mix, branch and indirect-branch density,
maximum loop-nesting depth, memory-access counts, and — via the range
analysis — how many accesses a bounds-check-eliminating tier still has
to guard.  The harness exposes the module-level aggregation as the
``metrics`` experiment so static structure can be set against the
measured performance counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..wasm import opcodes as op
from ..wasm.module import Function, Module
from ..wasm.types import F32, F64
from .cfg import build_cfg
from .liveness import dead_stores
from .ranges import function_ranges

_CONTROL = frozenset({
    op.UNREACHABLE, op.NOP, op.BLOCK, op.LOOP, op.IF, op.ELSE, op.END,
    op.BR, op.BR_IF, op.BR_TABLE, op.RETURN, op.CALL, op.CALL_INDIRECT,
})
_PARAMETRIC = frozenset({op.DROP, op.SELECT})
_LOCAL_GLOBAL = frozenset({
    op.LOCAL_GET, op.LOCAL_SET, op.LOCAL_TEE, op.GLOBAL_GET, op.GLOBAL_SET,
})
_CONST = frozenset({op.I32_CONST, op.I64_CONST, op.F32_CONST, op.F64_CONST})
_BRANCHES = frozenset({op.BR, op.BR_IF, op.BR_TABLE, op.IF})
_INDIRECT = frozenset({op.BR_TABLE, op.CALL_INDIRECT})


def _category(o: int) -> str:
    if o in op.IS_LOAD or o in op.IS_STORE or o in (op.MEMORY_SIZE,
                                                    op.MEMORY_GROW):
        return "memory"
    if o in _CONTROL:
        return "control"
    if o in _LOCAL_GLOBAL:
        return "var"
    if o in _CONST:
        return "const"
    if o in _PARAMETRIC:
        return "parametric"
    sig = op.SIGNATURES.get(o)
    if sig is not None:
        types = set(sig[0]) | set(sig[1])
        if types & {F32, F64}:
            return "float"
        return "int"
    return "other"


@dataclass
class FunctionMetrics:
    name: str
    instructions: int
    mix: Dict[str, int]
    branches: int                # br / br_if / br_table / if
    indirect: int                # br_table + call_indirect
    calls: int
    max_loop_depth: int
    mem_ops: int                 # reachable loads + stores
    checks_eliminated: int       # proven in-bounds by the range analysis
    dead_code_instrs: int        # pcs unreachable in the CFG
    dead_local_stores: int

    @property
    def checks_kept(self) -> int:
        return self.mem_ops - self.checks_eliminated

    @property
    def indirect_density(self) -> float:
        """Indirect transfers per 1000 instructions."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.indirect / self.instructions


@dataclass
class ModuleMetrics:
    functions: List[FunctionMetrics] = field(default_factory=list)

    def _total(self, attr: str) -> int:
        return sum(getattr(f, attr) for f in self.functions)

    @property
    def instructions(self) -> int:
        return self._total("instructions")

    @property
    def branches(self) -> int:
        return self._total("branches")

    @property
    def indirect(self) -> int:
        return self._total("indirect")

    @property
    def mem_ops(self) -> int:
        return self._total("mem_ops")

    @property
    def checks_eliminated(self) -> int:
        return self._total("checks_eliminated")

    @property
    def checks_kept(self) -> int:
        return self.mem_ops - self.checks_eliminated

    @property
    def dead_code_instrs(self) -> int:
        return self._total("dead_code_instrs")

    @property
    def dead_local_stores(self) -> int:
        return self._total("dead_local_stores")

    @property
    def max_loop_depth(self) -> int:
        return max((f.max_loop_depth for f in self.functions), default=0)

    @property
    def mix(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for f in self.functions:
            for k, v in f.mix.items():
                out[k] = out.get(k, 0) + v
        return out

    @property
    def elimination_ratio(self) -> float:
        if not self.mem_ops:
            return 0.0
        return self.checks_eliminated / self.mem_ops


def function_metrics(module: Module, func: Function,
                     index: int = -1) -> FunctionMetrics:
    mix: Dict[str, int] = {}
    branches = indirect = calls = 0
    depth = max_depth = 0
    frames: List[bool] = []
    for ins in func.body:
        o = ins[0]
        cat = _category(o)
        mix[cat] = mix.get(cat, 0) + 1
        if o in _BRANCHES:
            branches += 1
        if o in _INDIRECT:
            indirect += 1
        if o in (op.CALL, op.CALL_INDIRECT):
            calls += 1
        if o in (op.BLOCK, op.LOOP, op.IF):
            is_loop = o == op.LOOP
            frames.append(is_loop)
            if is_loop:
                depth += 1
                max_depth = max(max_depth, depth)
        elif o == op.END and frames:
            if frames.pop():
                depth -= 1

    ranges = function_ranges(module, func)
    cfg = build_cfg(func, module)
    return FunctionMetrics(
        name=func.name or (f"func[{index}]" if index >= 0 else "func"),
        instructions=len(func.body),
        mix=mix,
        branches=branches,
        indirect=indirect,
        calls=calls,
        max_loop_depth=max_depth,
        mem_ops=ranges.mem_ops,
        checks_eliminated=len(ranges.inbounds),
        dead_code_instrs=len(cfg.unreachable_pcs()),
        dead_local_stores=len(dead_stores(module, func)),
    )


def module_report(module: Module) -> ModuleMetrics:
    report = ModuleMetrics()
    for i, func in enumerate(module.functions):
        report.functions.append(function_metrics(module, func, i))
    return report


def render_report(report: ModuleMetrics, name: str = "module") -> str:
    """Human-readable summary used by ``wasicc --metrics``."""
    lines = [f"static metrics for {name}:"]
    lines.append(f"  functions:          {len(report.functions)}")
    lines.append(f"  instructions:       {report.instructions}")
    mix = report.mix
    total = max(report.instructions, 1)
    mix_s = ", ".join(f"{k} {100.0 * v / total:.1f}%"
                      for k, v in sorted(mix.items(),
                                         key=lambda kv: -kv[1]))
    lines.append(f"  opcode mix:         {mix_s}")
    lines.append(f"  branches:           {report.branches}"
                 f" ({1000.0 * report.branches / total:.1f}/kop)")
    lines.append(f"  indirect transfers: {report.indirect}"
                 f" ({1000.0 * report.indirect / total:.1f}/kop)")
    lines.append(f"  max loop depth:     {report.max_loop_depth}")
    lines.append(f"  memory accesses:    {report.mem_ops}")
    lines.append(f"  checks eliminated:  {report.checks_eliminated}"
                 f" ({100.0 * report.elimination_ratio:.1f}%)")
    lines.append(f"  dead code instrs:   {report.dead_code_instrs}")
    lines.append(f"  dead local stores:  {report.dead_local_stores}")
    return "\n".join(lines)
