"""Whole-module static audit: call graph + cost model + lints, with a
static-vs-dynamic cross-check against the instrumented interpreter.

One :func:`audit_module` call runs the interprocedural call graph
(:mod:`repro.analysis.callgraph`), the static cost model
(:mod:`repro.analysis.costmodel`) and the lint pass
(:mod:`repro.analysis.lints`) over a decoded module and packages the
result deterministically — same module, byte-identical report.

The suite-level entry (:func:`run_suite_audit`, surfaced as ``wabench
audit``) additionally *measures* each benchmark's dynamic opcode mix
and operand-stack depth by executing it once on the wasm3 model with
the :attr:`~repro.runtimes.interp.engine.Interpreter.opcode_profile`
observer attached (which bypasses the repro.speed fast path, so the
reference loop reports the true executed stream).  Two cross-checks
fall out:

* the static mix prediction vs the measured mix, per category, with
  deviations beyond :data:`~repro.analysis.costmodel.MIX_TOLERANCE`
  recorded as first-class findings;
* the static max-stack bound vs the observed interpreter stack depth —
  the bound is provably conservative, so any violation is a model
  soundness bug and always fails the gate.

Reports are compared against a committed baseline
(``AUDIT_baseline.json``): a diagnostic or deviation not in the
baseline fails CI, mirroring the perf-smoke ``BENCH_baseline`` flow.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..wasm.decoder import DecodeStats, decode_module_with_stats
from ..wasm.module import Module
from ..wasm.validator import validate_module
from .callgraph import CallGraph, build_call_graph
from .costmodel import (MIX_TOLERANCE, CostReport, compare_mix,
                        cost_report)
from .lints import Diagnostic, lint_module
from .metrics import _category as category_of

#: Bump when audit output semantics change; stamped into reports and
#: baselines so a stale baseline is detected instead of misread.
AUDIT_VERSION = 1


# ---------------------------------------------------------------------------
# Dynamic measurement (instrumented interpreter run)
# ---------------------------------------------------------------------------


class DynamicProfile:
    """Collects the executed opcode stream of one instrumented run.

    Instances are callables with the ``opcode_profile`` observer
    signature ``(func_index, opcode, stack_len)``.
    """

    __slots__ = ("op_counts", "func_ops", "max_stack", "total_ops")

    def __init__(self):
        self.op_counts = [0] * 256
        self.func_ops: Dict[int, int] = {}
        self.max_stack: Dict[int, int] = {}
        self.total_ops = 0

    def __call__(self, func_index: int, opcode: int, stack_len: int) -> None:
        self.op_counts[opcode] += 1
        self.total_ops += 1
        self.func_ops[func_index] = self.func_ops.get(func_index, 0) + 1
        if stack_len > self.max_stack.get(func_index, -1):
            self.max_stack[func_index] = stack_len

    def mix_shares(self) -> Dict[str, float]:
        """Executed instruction mix by category, as shares of 1."""
        counts: Dict[str, int] = {}
        for o, n in enumerate(self.op_counts):
            if n:
                cat = category_of(o)
                counts[cat] = counts.get(cat, 0) + n
        total = sum(counts.values()) or 1
        return {cat: n / total for cat, n in sorted(counts.items())}


def dynamic_profile(wasm_bytes: bytes, fs=None) -> DynamicProfile:
    """Execute ``wasm_bytes`` once on the wasm3 model with the opcode
    observer attached; returns the collected profile.  A trapping or
    nonzero-exit run still returns whatever executed."""
    from ..runtimes.interpreters import Wasm3Runtime

    profile = DynamicProfile()
    rt = Wasm3Runtime()
    rt.instr_profile = profile
    rt.run(wasm_bytes, fs=fs)
    return profile


# ---------------------------------------------------------------------------
# Static audit of one module
# ---------------------------------------------------------------------------


@dataclass
class ModuleAudit:
    """Everything the static auditor derived from one module."""

    name: str
    diagnostics: List[Diagnostic]
    graph: CallGraph
    cost: CostReport

    def diagnostic_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for d in self.diagnostics:
            counts[d.id] = counts.get(d.id, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> Dict:
        """Deterministic JSON-able summary (pure function of inputs)."""
        graph = self.graph
        reachable = graph.reachable()
        return {
            "name": self.name,
            "audit_version": AUDIT_VERSION,
            "diagnostics": [d.key() for d in self.diagnostics],
            "diagnostic_counts": self.diagnostic_counts(),
            "callgraph": {
                "functions": graph.num_funcs,
                "imported": graph.num_imported,
                "roots": [graph.names[i] for i in graph.roots],
                "reachable": len(reachable),
                "recursive": sorted(graph.names[i]
                                    for i in graph.recursive),
                "sccs": sum(1 for s in graph.sccs if len(s) > 1),
                "max_call_depth": graph.max_call_depth,
                "imprecise_indirect": graph.imprecise_indirect,
                "max_stack": {
                    graph.names[i]: bound
                    for i, bound in enumerate(graph.max_stack)
                    if bound is not None},
            },
            "static_mix": {k: round(v, 4)
                           for k, v in self.cost.static_mix.items()},
            "hot_functions": [[name, round(share, 4)]
                              for name, share
                              in self.cost.hot_functions()],
            "syscalls": {
                "freq": {k: round(v, 4)
                         for k, v in self.cost.syscall_freq.items()},
                "predicted_cost": {
                    k: round(v, 2)
                    for k, v in sorted(self.cost.syscall_totals.items())},
            },
        }

    def render(self) -> str:
        """Human-readable single-module report (``wasicc --audit``)."""
        graph = self.graph
        lines = [f"static audit for {self.name}:"]
        depth = graph.max_call_depth
        lines.append(f"  functions:        {graph.num_funcs} "
                     f"({graph.num_imported} imported, "
                     f"{len(graph.reachable())} reachable)")
        lines.append(f"  recursion:        "
                     f"{len(graph.recursive)} function(s) in cycles; "
                     f"max call depth "
                     f"{'unbounded' if depth is None else depth}")
        bounds = [b for b in graph.max_stack if b is not None]
        lines.append(f"  max value stack:  "
                     f"{max(bounds) if bounds else 0}")
        mix = ", ".join(f"{k} {100 * v:.1f}%"
                        for k, v in sorted(self.cost.static_mix.items(),
                                           key=lambda kv: -kv[1]))
        lines.append(f"  predicted mix:    {mix}")
        hot = ", ".join(f"{name} {100 * share:.1f}%"
                        for name, share in self.cost.hot_functions())
        lines.append(f"  predicted hot:    {hot}")
        if self.cost.syscall_freq:
            sys_cost = ", ".join(
                f"{eng} {total:.0f}" for eng, total
                in sorted(self.cost.syscall_totals.items()))
            top = sorted(self.cost.syscall_freq.items(),
                         key=lambda kv: (-kv[1], kv[0]))[:4]
            calls = ", ".join(f"{fn} x{f:.0f}" for fn, f in top)
            lines.append(f"  predicted wasi:   {calls} "
                         f"(instr: {sys_cost})")
        counts = self.diagnostic_counts()
        summary = ", ".join(f"{k} x{v}" for k, v in counts.items()) \
            or "none"
        lines.append(f"  diagnostics:      {summary}")
        for d in self.diagnostics:
            lines.append("    " + d.format(self.name))
        return "\n".join(lines)


def audit_module(module: Module, stats: Optional[DecodeStats] = None,
                 name: str = "module") -> ModuleAudit:
    """Static audit of a decoded (assumed valid) module."""
    graph = build_call_graph(module)
    return ModuleAudit(
        name=name,
        diagnostics=lint_module(module, stats=stats, graph=graph),
        graph=graph,
        cost=cost_report(module, graph=graph))


def audit_wasm(wasm_bytes: bytes, name: str = "module") -> ModuleAudit:
    """Decode, validate, and statically audit a binary module."""
    module, stats = decode_module_with_stats(wasm_bytes)
    validate_module(module)
    return audit_module(module, stats=stats, name=name)


# ---------------------------------------------------------------------------
# Suite audit (wabench audit)
# ---------------------------------------------------------------------------


def audit_benchmark(name: str, size: str, opt: int,
                    cache_dir: Optional[str] = None,
                    wasm_bytes: Optional[bytes] = None) -> Dict:
    """Audit one suite benchmark: static report + dynamic cross-check."""
    from ..bench import get
    from ..harness.runner import Harness
    from ..wasi import VirtualFS

    if wasm_bytes is None:
        harness = Harness(size=size, opt_level=opt, benchmarks=[name],
                          cache_dir=cache_dir)
        wasm_bytes = harness.wasm_for(name, opt)
    audit = audit_wasm(wasm_bytes, name=name)

    bench = get(name)
    fs = VirtualFS()
    for path, data in bench.files_for(size).items():
        fs.add_file(path, data)
    profile = dynamic_profile(wasm_bytes, fs=fs)

    dynamic_mix = {k: round(v, 4) for k, v in profile.mix_shares().items()}
    mix_report = compare_mix(audit.cost.static_mix, profile.mix_shares())
    deviations = [rec["category"] for rec in mix_report if rec["deviates"]]

    stack_violations = []
    for index, observed in sorted(profile.max_stack.items()):
        bound = audit.graph.max_stack[index] \
            if index < len(audit.graph.max_stack) else None
        if bound is not None and observed > bound:
            stack_violations.append(
                {"function": audit.graph.names[index],
                 "static_bound": bound, "observed": observed})

    record = audit.to_dict()
    record.update({
        "dynamic_mix": dynamic_mix,
        "dynamic_ops": profile.total_ops,
        "mix_report": mix_report,
        "deviations": deviations,
        "stack_bound_ok": not stack_violations,
        "stack_violations": stack_violations,
    })
    return record


@dataclass
class SuiteAudit:
    """Deterministic suite-wide audit report."""

    size: str
    opt: int
    records: List[Dict] = field(default_factory=list)

    def to_json(self) -> str:
        return json.dumps({
            "audit_version": AUDIT_VERSION,
            "size": self.size,
            "opt": self.opt,
            "tolerance": MIX_TOLERANCE,
            "benchmarks": {r["name"]: r for r in self.records},
        }, sort_keys=True, indent=1)

    def baseline_dict(self) -> Dict:
        """The committed-baseline shape: expected diagnostics and
        expected mix deviations per benchmark."""
        return {
            "audit_version": AUDIT_VERSION,
            "size": self.size,
            "opt": self.opt,
            "tolerance": MIX_TOLERANCE,
            "benchmarks": {
                r["name"]: {"diagnostics": list(r["diagnostics"]),
                            "deviations": list(r["deviations"])}
                for r in self.records},
        }

    def render(self) -> str:
        lines = [f"wabench audit: {len(self.records)} benchmark(s), "
                 f"size={self.size} -O{self.opt}"]
        total_diags: Dict[str, int] = {}
        total_dev = 0
        for r in self.records:
            for k, v in r["diagnostic_counts"].items():
                total_diags[k] = total_diags.get(k, 0) + v
            total_dev += len(r["deviations"])
            counts = ", ".join(f"{k} x{v}" for k, v
                               in r["diagnostic_counts"].items()) or "clean"
            dev = (" | mix deviation: " + ",".join(r["deviations"])
                   if r["deviations"] else "")
            stack = "" if r["stack_bound_ok"] else " | STACK BOUND VIOLATED"
            lines.append(f"  {r['name']:16s} {counts}{dev}{stack}")
        summary = ", ".join(f"{k} x{v}"
                            for k, v in sorted(total_diags.items())) \
            or "no diagnostics"
        lines.append(f"total: {summary}; "
                     f"{total_dev} mix deviation(s)")
        return "\n".join(lines)


def run_suite_audit(size: str, opt: int,
                    benchmarks: Optional[Sequence[str]] = None,
                    cache_dir: Optional[str] = None,
                    jobs: int = 1,
                    progress=None) -> SuiteAudit:
    """Audit the whole suite; output is byte-identical for any ``jobs``.

    Records are assembled in benchmark declaration order regardless of
    worker completion order, and every field of a record is a pure
    function of (benchmark, size, opt) — the two facts that make the
    report deterministic.
    """
    from ..bench import ALL_BENCHMARKS

    names = list(benchmarks) if benchmarks else \
        [b.name for b in ALL_BENCHMARKS]
    results: Dict[str, Dict] = {}
    if jobs > 1 and len(names) > 1:
        import concurrent.futures as cf
        with cf.ProcessPoolExecutor(
                max_workers=min(jobs, len(names)),
                initializer=_worker_init,
                initargs=(size, opt, cache_dir)) as pool:
            for record in pool.map(_worker_audit, names):
                results[record["name"]] = record
                if progress is not None:
                    progress(record)
    else:
        for name in names:
            record = audit_benchmark(name, size, opt, cache_dir=cache_dir)
            results[name] = record
            if progress is not None:
                progress(record)
    return SuiteAudit(size=size, opt=opt,
                      records=[results[name] for name in names])


_WORKER_ARGS: Tuple = ()


def _worker_init(size: str, opt: int, cache_dir: Optional[str]) -> None:
    global _WORKER_ARGS
    _WORKER_ARGS = (size, opt, cache_dir)


def _worker_audit(name: str) -> Dict:
    size, opt, cache_dir = _WORKER_ARGS
    return audit_benchmark(name, size, opt, cache_dir=cache_dir)


# ---------------------------------------------------------------------------
# Baseline gate
# ---------------------------------------------------------------------------


def compare_baseline(suite: SuiteAudit,
                     baseline: Dict) -> Tuple[List[str], List[str]]:
    """Gate a suite audit against the committed baseline.

    Returns ``(regressions, warnings)``: a diagnostic or mix deviation
    absent from the baseline — or any stack-bound violation, or a
    size/opt/version mismatch — is a regression; baseline entries that
    no longer occur are warnings (improvements worth a refresh).
    """
    regressions: List[str] = []
    warnings: List[str] = []
    if baseline.get("audit_version") != AUDIT_VERSION:
        regressions.append(
            f"baseline audit_version {baseline.get('audit_version')!r} "
            f"!= {AUDIT_VERSION} (refresh the baseline)")
        return regressions, warnings
    for field_name in ("size", "opt"):
        want = getattr(suite, field_name)
        got = baseline.get(field_name)
        if got != want:
            regressions.append(
                f"baseline {field_name}={got!r} does not match "
                f"audit {field_name}={want!r}")
    expected = baseline.get("benchmarks", {})
    for record in suite.records:
        name = record["name"]
        base = expected.get(name)
        if base is None:
            regressions.append(f"{name}: not in baseline")
            continue
        base_diags = set(base.get("diagnostics", []))
        for key in record["diagnostics"]:
            if key not in base_diags:
                regressions.append(f"{name}: new diagnostic: {key}")
        seen = set(record["diagnostics"])
        for key in sorted(base_diags - seen):
            warnings.append(f"{name}: baseline diagnostic no longer "
                            f"fires: {key}")
        base_dev = set(base.get("deviations", []))
        for cat in record["deviations"]:
            if cat not in base_dev:
                regressions.append(
                    f"{name}: new static-vs-dynamic mix deviation in "
                    f"category {cat!r}")
        for cat in sorted(base_dev - set(record["deviations"])):
            warnings.append(f"{name}: baseline mix deviation in "
                            f"{cat!r} no longer occurs")
        for violation in record["stack_violations"]:
            regressions.append(
                f"{name}: static stack bound violated in "
                f"{violation['function']} (bound "
                f"{violation['static_bound']} < observed "
                f"{violation['observed']})")
    return regressions, warnings
