"""Interprocedural call graph over decoded Wasm modules.

Nodes are functions in the joint (imports-first) index space.  Direct
edges come from ``call`` sites; ``call_indirect`` sites are resolved
*type-based*: a site with type ``t`` may target any function that both
appears in an element segment (the only way the MVP funcref table is
populated) and has signature ``t``.  When the table itself is imported
the element view is incomplete, so resolution conservatively widens to
every function with a matching signature (``imprecise_indirect``).

On top of the edge set the module computes:

* Tarjan SCCs and the set of (mutually or self) recursive functions;
* a static *max call depth* from the entry roots — the longest root
  path in the condensation DAG, or ``None`` when a reachable cycle
  makes the depth unbounded;
* a static *operand-stack bound* per defined function — the maximum
  value-stack height along any path, computed with the same structured
  height tracking the interpreter's loader performs, so the bound is
  provably >= any height the reference interpreter ever observes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..wasm import opcodes as op
from ..wasm.module import KIND_FUNC, KIND_TABLE, Function, Module
from ..wasm.types import FuncType


@dataclass
class CallGraph:
    """Resolved interprocedural structure of one module."""

    num_funcs: int
    num_imported: int
    names: List[str]                      # per joint index
    edges: List[Tuple[int, ...]]          # callee indices, sorted, per caller
    direct: List[Tuple[int, ...]]         # subset of edges from `call` sites
    roots: Tuple[int, ...]                # exports + start, sorted
    table_targets: Tuple[int, ...]        # funcs listed in element segments
    indirect_types: List[Tuple[int, ...]] # type indices used at call_indirect
    imprecise_indirect: bool              # table imported -> widened resolution
    sccs: List[Tuple[int, ...]] = field(default_factory=list)
    scc_of: List[int] = field(default_factory=list)
    recursive: Set[int] = field(default_factory=set)
    max_call_depth: Optional[int] = None  # frames from a root; None = cycle
    max_stack: List[Optional[int]] = field(default_factory=list)

    def reachable(self) -> Set[int]:
        """Function indices reachable from the entry roots."""
        seen = set(self.roots)
        stack = list(self.roots)
        while stack:
            for callee in self.edges[stack.pop()]:
                if callee not in seen:
                    seen.add(callee)
                    stack.append(callee)
        return seen

    def dead_functions(self) -> List[int]:
        """Defined functions no root can ever reach."""
        live = self.reachable()
        return [i for i in range(self.num_imported, self.num_funcs)
                if i not in live]


def static_stack_bound(module: Module, func: Function) -> int:
    """Max operand-stack height along any path through ``func``.

    Mirrors the loader's structured height tracking
    (:func:`repro.runtimes.interp.engine.prepare_function`): heights are
    exact at instruction boundaries for validated bodies, and code made
    unreachable by ``br``/``return``/``unreachable`` contributes nothing
    (the interpreter never executes it).  The returned bound therefore
    dominates every ``len(stack)`` the reference loop can observe.
    """
    ftype = module.types[func.type_index]
    func_arity = len(ftype.results)
    # frame: [opcode, entry_height, arity, entry_unreachable]
    ctrl: List[list] = [[0, 0, func_arity, False]]
    height = 0
    max_height = 0
    unreachable = False

    for ins in func.body:
        o = ins[0]
        if o in (op.BLOCK, op.LOOP, op.IF):
            if o == op.IF and not unreachable:
                height -= 1
            ctrl.append([o, height, 0 if ins[1] == 0x40 else 1, unreachable])
        elif o == op.ELSE:
            entry = ctrl[-1]
            height = entry[1]
            unreachable = entry[3]
        elif o == op.END:
            if len(ctrl) > 1:
                _eo, entry_height, arity, entry_unreachable = ctrl.pop()
                height = entry_height + arity
                unreachable = entry_unreachable
                max_height = max(max_height, height)
        elif o in (op.BR, op.BR_IF, op.BR_TABLE):
            if o != op.BR and not unreachable:
                height -= 1          # condition / table index operand
            if o != op.BR_IF:
                unreachable = True   # br / br_table end the straight line
        elif o in (op.RETURN, op.UNREACHABLE):
            unreachable = True
        elif not unreachable:
            pops, pushes = _stack_effect(module, ins)
            height += pushes - pops
            max_height = max(max_height, height)
    return max_height


def _stack_effect(module: Module, ins: tuple) -> Tuple[int, int]:
    """(pops, pushes) of a non-control instruction (loader semantics)."""
    o = ins[0]
    sig = op.SIGNATURES.get(o)
    if sig is not None:
        return len(sig[0]), len(sig[1])
    if o in (op.LOCAL_GET, op.GLOBAL_GET):
        return 0, 1
    if o in (op.LOCAL_SET, op.GLOBAL_SET, op.DROP):
        return 1, 0
    if o == op.LOCAL_TEE:
        return 1, 1
    if o == op.SELECT:
        return 3, 1
    if o == op.CALL:
        ftype = module.func_type(ins[1])
        return len(ftype.params), len(ftype.results)
    if o == op.CALL_INDIRECT:
        ftype = module.types[ins[1]]
        return len(ftype.params) + 1, len(ftype.results)
    return 0, 0


def _func_name(module: Module, index: int) -> str:
    imported = module.imported(KIND_FUNC)
    if index < len(imported):
        imp = imported[index]
        return f"{imp.module}.{imp.name}"
    func = module.functions[index - len(imported)]
    return func.name or f"f{index}"


def _tarjan(n: int, edges: Sequence[Sequence[int]]
            ) -> Tuple[List[Tuple[int, ...]], List[int]]:
    """Iterative Tarjan; SCCs emitted in deterministic reverse-topo order."""
    index_of = [-1] * n
    low = [0] * n
    on_stack = [False] * n
    stack: List[int] = []
    sccs: List[Tuple[int, ...]] = []
    scc_of = [-1] * n
    counter = 0

    for start in range(n):
        if index_of[start] >= 0:
            continue
        work: List[Tuple[int, int]] = [(start, 0)]
        while work:
            node, ei = work[-1]
            if ei == 0:
                index_of[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack[node] = True
            advanced = False
            succs = edges[node]
            while ei < len(succs):
                succ = succs[ei]
                ei += 1
                if index_of[succ] < 0:
                    work[-1] = (node, ei)
                    work.append((succ, 0))
                    advanced = True
                    break
                if on_stack[succ]:
                    low[node] = min(low[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if low[node] == index_of[node]:
                comp = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    scc_of[member] = len(sccs)
                    comp.append(member)
                    if member == node:
                        break
                sccs.append(tuple(sorted(comp)))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return sccs, scc_of


def _max_call_depth(graph: "CallGraph") -> Optional[int]:
    """Longest root-to-leaf path (in frames) in the condensation DAG."""
    reachable = graph.reachable()
    if any(i in graph.recursive for i in reachable):
        return None
    if not graph.roots:
        return 0
    # Memoized longest path over the (acyclic, by the check above) edge
    # set, with an explicit stack so deep call chains cannot overflow
    # Python's own recursion limit.
    depth: Dict[int, int] = {}
    result = 0
    for root in graph.roots:
        stack: List[Tuple[int, int]] = [(root, 0)]
        while stack:
            node, ei = stack.pop()
            succs = graph.edges[node]
            if ei == 0 and node in depth:
                continue
            while ei < len(succs) and succs[ei] in depth:
                ei += 1
            if ei < len(succs):
                stack.append((node, ei + 1))
                stack.append((succs[ei], 0))
            else:
                depth[node] = 1 + max(
                    (depth[c] for c in succs), default=0)
        result = max(result, depth[root])
    return result


def build_call_graph(module: Module) -> CallGraph:
    """Resolve the module's interprocedural structure."""
    n = module.num_funcs
    num_imported = module.num_imported_funcs

    # Table contents: element-listed functions, grouped by signature.
    table_targets: List[int] = sorted(
        {idx for seg in module.elements for idx in seg.func_indices})
    by_sig: Dict[FuncType, List[int]] = {}
    for idx in table_targets:
        by_sig.setdefault(module.func_type(idx), []).append(idx)
    imprecise = any(imp.kind == KIND_TABLE for imp in module.imports)
    if imprecise:
        by_sig = {}
        for idx in range(n):
            by_sig.setdefault(module.func_type(idx), []).append(idx)

    direct: List[Set[int]] = [set() for _ in range(n)]
    indirect_types: List[Set[int]] = [set() for _ in range(n)]
    edges: List[Set[int]] = [set() for _ in range(n)]
    for i, func in enumerate(module.functions):
        caller = num_imported + i
        for ins in func.body:
            o = ins[0]
            if o == op.CALL:
                direct[caller].add(ins[1])
                edges[caller].add(ins[1])
            elif o == op.CALL_INDIRECT:
                indirect_types[caller].add(ins[1])
                sig = module.types[ins[1]]
                for callee in by_sig.get(sig, ()):
                    edges[caller].add(callee)

    names = [_func_name(module, i) for i in range(n)]
    roots = sorted({e.index for e in module.exports if e.kind == KIND_FUNC} |
                   ({module.start} if module.start is not None else set()))

    sorted_edges = [tuple(sorted(s)) for s in edges]
    graph = CallGraph(
        num_funcs=n, num_imported=num_imported, names=names,
        edges=sorted_edges,
        direct=[tuple(sorted(s)) for s in direct],
        roots=tuple(roots),
        table_targets=tuple(table_targets),
        indirect_types=[tuple(sorted(s)) for s in indirect_types],
        imprecise_indirect=imprecise)

    graph.sccs, graph.scc_of = _tarjan(n, sorted_edges)
    graph.recursive = {
        i for scc in graph.sccs if len(scc) > 1 for i in scc}
    graph.recursive |= {i for i in range(n) if i in edges[i]}
    graph.max_call_depth = _max_call_depth(graph)

    graph.max_stack = [None] * n
    for i, func in enumerate(module.functions):
        graph.max_stack[num_imported + i] = static_stack_bound(module, func)
    return graph
