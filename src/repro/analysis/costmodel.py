"""Static cost model: predicted hot functions and instruction-mix shares.

The model combines three ingredients:

* **per-block instruction mix** — the same opcode categories as
  :mod:`repro.analysis.metrics` (memory/control/var/const/parametric/
  float/int), counted per pc;
* **loop-nest weighting** — an instruction under ``k`` nested loops is
  assumed to execute :data:`LOOP_WEIGHT` ** ``k`` times (conditional
  arms are not discounted, keeping the model an upper-shape estimate);
* **per-engine cost tables** — the interpreter profiles from
  :mod:`repro.runtimes.interp.engine` (dispatch + per-opcode handler
  instructions for the wasm3/wamr models) and a JIT table mirroring
  :meth:`repro.isa.program.MFunction.instr_cost` (one machine op per
  wasm op, +2 for the bounds check of each memory access, call setup
  proportional to arity).

Call frequencies propagate through the interprocedural call graph
(:mod:`repro.analysis.callgraph`): roots start at 1, each call site
multiplies by its loop weight, and members of a recursive SCC get one
extra :data:`RECURSION_WEIGHT` factor.  The output is deliberately a
*shape* prediction — the audit report sets it against the measured
dynamic mix and flags categories whose deviation exceeds the documented
tolerance (:func:`compare_mix`), which is exactly the static/dynamic
gap the "Not So Fast" analysis measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..registry import syscall_cost_table
from ..wasm import opcodes as op
from ..wasm.module import Module
from .callgraph import CallGraph, build_call_graph
from .metrics import _category as category_of

#: Assumed iterations per loop-nest level (static weighting heuristic).
LOOP_WEIGHT = 8
#: Extra frequency factor for members of a recursive SCC.
RECURSION_WEIGHT = 8
#: Loop-depth cap so pathological nests cannot overflow the weights.
_MAX_LOOP_DEPTH = 6
#: Frequency cap (same role: keeps deep call pyramids finite).
_MAX_FREQ = 1e15

#: Engines the static table covers.  The two interpreter entries are
#: derived from the real profiles; "jit" approximates any compiled tier.
ENGINE_TABLES = ("wasm3", "wamr", "jit")


def _interp_cost_table(profile_name: str) -> List[int]:
    from ..runtimes.interp.engine import CLASSIC_PROFILE, THREADED_PROFILE
    profile = THREADED_PROFILE if profile_name == "wasm3" else CLASSIC_PROFILE
    handler = profile.handler_costs()
    return [profile.dispatch_cost + handler[o] for o in range(256)]


def _jit_cost_table() -> List[int]:
    """Machine instructions per wasm op in the compiled tiers, mirroring
    ``MFunction.instr_cost``: 1 per op, +2 bounds check per memory
    access, call overhead grows with the transfer itself."""
    table = [1] * 256
    for o in op.IS_LOAD | op.IS_STORE:
        table[o] = 3
    table[op.CALL] = 4
    table[op.CALL_INDIRECT] = 8
    table[op.MEMORY_GROW] = 60
    # Structural markers compile to nothing.
    for o in (op.BLOCK, op.LOOP, op.END, op.NOP):
        table[o] = 0
    return table


def engine_cost_tables() -> Dict[str, List[int]]:
    return {"wasm3": _interp_cost_table("wasm3"),
            "wamr": _interp_cost_table("wamr"),
            "jit": _jit_cost_table()}


def engine_syscall_tables() -> Dict[str, Dict[str, Tuple[int, int]]]:
    """Per-engine WASI syscall pricing for the static model's three
    engine columns ("jit" takes the wasmtime trampoline pricing)."""
    return {"wasm3": syscall_cost_table("wasm3"),
            "wamr": syscall_cost_table("wamr"),
            "jit": syscall_cost_table("wasmtime")}


@dataclass
class FunctionCost:
    """Static cost prediction for one defined function."""

    index: int
    name: str
    weighted_ops: float                    # loop-weighted op count
    call_freq: float                       # interprocedural frequency
    mix: Dict[str, float] = field(default_factory=dict)   # weighted
    engine_cost: Dict[str, float] = field(default_factory=dict)

    @property
    def total_weight(self) -> float:
        return self.weighted_ops * self.call_freq


@dataclass
class CostReport:
    """Module-level static cost prediction."""

    functions: List[FunctionCost] = field(default_factory=list)
    static_mix: Dict[str, float] = field(default_factory=dict)  # shares
    engine_totals: Dict[str, float] = field(default_factory=dict)
    #: Predicted host-call (WASI shim) instructions per engine column —
    #: weighted call frequency into each imported function times that
    #: engine's syscall base cost.  Kept separate from ``engine_totals``
    #: (guest-code work) so the I/O axis is visible on its own.
    syscall_totals: Dict[str, float] = field(default_factory=dict)
    #: Loop-weighted, frequency-propagated calls into each imported
    #: (WASI) function, by import name.
    syscall_freq: Dict[str, float] = field(default_factory=dict)

    def hot_functions(self, top: int = 5) -> List[Tuple[str, float]]:
        """Top functions by share of total predicted weight."""
        total = sum(f.total_weight for f in self.functions) or 1.0
        ranked = sorted(self.functions,
                        key=lambda f: (-f.total_weight, f.index))
        return [(f.name, f.total_weight / total) for f in ranked[:top]]


def _loop_weights(body) -> List[float]:
    """Per-pc execution weight from the loop-nest structure."""
    weights = [1.0] * len(body)
    depth = 0
    frames: List[bool] = []
    for pc, ins in enumerate(body):
        o = ins[0]
        if o in (op.BLOCK, op.LOOP, op.IF):
            is_loop = o == op.LOOP
            frames.append(is_loop)
            if is_loop:
                depth += 1
        weights[pc] = float(LOOP_WEIGHT ** min(depth, _MAX_LOOP_DEPTH))
        if o == op.END and frames:
            if frames.pop():
                depth -= 1
    return weights


def _call_frequencies(module: Module, graph: CallGraph,
                      site_weights: Dict[int, Dict[int, float]]
                      ) -> List[float]:
    """Propagate root frequency 1.0 through the condensation DAG."""
    n = graph.num_funcs
    freq = [0.0] * n
    for root in graph.roots:
        freq[root] = max(freq[root], 1.0)

    # Condensation topological order: Tarjan emits SCCs in reverse
    # topological order, so walking the list backwards visits callers
    # before callees.
    order = [scc for scc in reversed(graph.sccs)]
    for scc in order:
        members = set(scc)
        recursive = len(scc) > 1 or scc[0] in graph.recursive
        if recursive:
            boost = float(RECURSION_WEIGHT)
            for i in scc:
                if freq[i]:
                    freq[i] = min(freq[i] * boost, _MAX_FREQ)
            # Mutual recursion: every member runs when any member does.
            peak = max((freq[i] for i in scc), default=0.0)
            for i in scc:
                freq[i] = max(freq[i], peak)
        for caller in scc:
            if not freq[caller]:
                continue
            for callee, weight in site_weights.get(caller, {}).items():
                if callee in members:
                    continue          # intra-SCC handled by the boost
                freq[callee] = min(freq[callee] + freq[caller] * weight,
                                   _MAX_FREQ)
    return freq


def cost_report(module: Module,
                graph: Optional[CallGraph] = None) -> CostReport:
    """Predict hot functions and the dynamic instruction-mix shape."""
    graph = graph if graph is not None else build_call_graph(module)
    num_imported = graph.num_imported
    tables = engine_cost_tables()

    per_func_mix: Dict[int, Dict[str, float]] = {}
    per_func_ops: Dict[int, float] = {}
    per_func_engine: Dict[int, Dict[str, float]] = {}
    site_weights: Dict[int, Dict[int, float]] = {}

    for i, func in enumerate(module.functions):
        index = num_imported + i
        weights = _loop_weights(func.body)
        mix: Dict[str, float] = {}
        engine: Dict[str, float] = {name: 0.0 for name in tables}
        total = 0.0
        sites: Dict[int, float] = {}
        for pc, ins in enumerate(func.body):
            o = ins[0]
            w = weights[pc]
            total += w
            cat = category_of(o)
            mix[cat] = mix.get(cat, 0.0) + w
            for name, table in tables.items():
                engine[name] += w * table[o]
            if o == op.CALL:
                sites[ins[1]] = sites.get(ins[1], 0.0) + w
            elif o == op.CALL_INDIRECT:
                sig = module.types[ins[1]]
                targets = [t for t in graph.edges[index]
                           if module.func_type(t) == sig]
                if targets:
                    share = w / len(targets)
                    for t in targets:
                        sites[t] = sites.get(t, 0.0) + share
        per_func_mix[index] = mix
        per_func_ops[index] = total
        per_func_engine[index] = engine
        site_weights[index] = sites

    freq = _call_frequencies(module, graph, site_weights)

    report = CostReport()
    static_mix: Dict[str, float] = {}
    engine_totals: Dict[str, float] = {name: 0.0 for name in tables}
    for i in range(len(module.functions)):
        index = num_imported + i
        f = freq[index]
        fc = FunctionCost(
            index=index, name=graph.names[index],
            weighted_ops=per_func_ops[index], call_freq=f,
            mix=per_func_mix[index],
            engine_cost={name: per_func_engine[index][name] * f
                         for name in tables})
        report.functions.append(fc)
        for cat, w in fc.mix.items():
            static_mix[cat] = static_mix.get(cat, 0.0) + w * f
        for name in tables:
            engine_totals[name] += fc.engine_cost[name]

    total_weight = sum(static_mix.values()) or 1.0
    report.static_mix = {cat: w / total_weight
                         for cat, w in sorted(static_mix.items())}
    report.engine_totals = engine_totals

    # Host-call (WASI) axis: call frequency propagated into imported
    # functions times each engine's syscall pricing (base cost only —
    # bytes moved are not statically known).
    sys_tables = engine_syscall_tables()
    syscall_freq: Dict[str, float] = {}
    syscall_totals = {name: 0.0 for name in sys_tables}
    for idx in range(num_imported):
        f = freq[idx]
        if not f:
            continue
        wasi_fn = graph.names[idx].rsplit(".", 1)[-1]
        syscall_freq[wasi_fn] = syscall_freq.get(wasi_fn, 0.0) + f
        for eng, table in sys_tables.items():
            base, _per8 = table.get(wasi_fn, (180, 1))
            syscall_totals[eng] += f * base
    report.syscall_freq = dict(sorted(syscall_freq.items()))
    report.syscall_totals = syscall_totals
    return report


# ---------------------------------------------------------------------------
# Static vs. dynamic mix comparison
# ---------------------------------------------------------------------------

#: Documented deviation tolerance (see DESIGN.md "Static auditing"):
#: a category counts as deviating when its dynamic share is at least
#: MIN_SHARE and the relative error exceeds REL_TOL, or its absolute
#: share gap exceeds ABS_TOL.  Static weighting is a shape heuristic
#: (every loop counts LOOP_WEIGHT iterations), so the tolerance is
#: deliberately loose; deviations are *recorded*, not errors.
MIX_TOLERANCE = {"rel": 0.75, "abs": 0.20, "min_share": 0.05}


def compare_mix(static_mix: Dict[str, float],
                dynamic_mix: Dict[str, float],
                tolerance: Optional[Dict[str, float]] = None
                ) -> List[Dict[str, float]]:
    """Per-category static-vs-dynamic deviation report.

    Returns one record per category (union of both mixes), sorted by
    name, each with the shares, the error measures, and a ``deviates``
    flag under the given tolerance.
    """
    tol = dict(MIX_TOLERANCE)
    tol.update(tolerance or {})
    out = []
    for cat in sorted(set(static_mix) | set(dynamic_mix)):
        s = static_mix.get(cat, 0.0)
        d = dynamic_mix.get(cat, 0.0)
        abs_err = abs(s - d)
        rel_err = abs_err / d if d > 0 else (0.0 if s == 0.0 else 1.0)
        deviates = (abs_err > tol["abs"] or
                    (d >= tol["min_share"] and rel_err > tol["rel"]))
        out.append({"category": cat,
                    "static": round(s, 4), "dynamic": round(d, 4),
                    "abs_err": round(abs_err, 4),
                    "rel_err": round(rel_err, 4),
                    "deviates": bool(deviates)})
    return out
