"""Interval (range) analysis over i32 locals and memory addresses.

The environment maps i32 local indices to signed-32 intervals; locals
absent from the environment are unconstrained (TOP).  Non-parameter
locals start at ``[0, 0]`` (Wasm zero-initializes locals), parameters
start unconstrained.

Inside a block the analysis symbolically evaluates the operand stack so
that branch conditions of the shape ``cmp(local, const)`` (optionally
under ``i32.eqz``) refine the interval of ``local`` along the taken /
fall-through edges, and so that the address operand of each load/store
can be bounded.

A memory access at pc with static offset ``off`` and width ``w`` is
*provably in bounds* when its address interval satisfies ``lo >= 0`` and
``hi + off + w <= min_pages * 64KiB``.  Linear memory only grows, so the
declared minimum is a sound lower bound on the memory size at any point
in execution — this is the fact the LLVM JIT tier uses to drop CHECK
ops (see ``runtimes/jit/lowering.py``).

All transfer functions are wrap-aware: any arithmetic whose exact result
could leave the signed-32 range degrades to TOP rather than modelling
wraparound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..wasm import opcodes as op
from ..wasm.module import Function, Module
from ..wasm.types import I32, PAGE_SIZE
from . import dataflow
from .cfg import BasicBlock, ControlFlowGraph, build_cfg

Interval = Tuple[int, int]

S32_MIN = -(1 << 31)
S32_MAX = (1 << 31) - 1
U32_MAX = (1 << 32) - 1
# Sentinels well outside i32 so widened bounds never collide with real
# values; any bound drifting past the guard collapses to them.
NEG_INF = -(1 << 40)
POS_INF = 1 << 40
TOP: Interval = (NEG_INF, POS_INF)


def _guard(lo: int, hi: int) -> Interval:
    """Exact only when the whole interval fits in signed-32 (no wrap)."""
    if lo < S32_MIN or hi > S32_MAX:
        return TOP
    return (lo, hi)


def _hull(a: Interval, b: Interval) -> Interval:
    return (min(a[0], b[0]), max(a[1], b[1]))


# -- symbolic stack entries -------------------------------------------------
#
# ("L", idx)              current value of i32 local idx
# ("C", value)            exact signed-32 constant
# ("V", interval)         plain interval
# ("CMP", code, idx, c)   boolean: pred(s32(local idx), c); codes below
# ("EQZ", inner)          boolean negation of a CMP entry

_SWAP = {"lt_s": "gt_s", "le_s": "ge_s", "gt_s": "lt_s", "ge_s": "le_s",
         "lt_u": "gt_u", "le_u": "ge_u", "gt_u": "lt_u", "ge_u": "le_u",
         "eq": "eq", "ne": "ne"}
_NEGATE = {"lt_s": "ge_s", "ge_s": "lt_s", "gt_s": "le_s", "le_s": "gt_s",
           "lt_u": "ge_u", "ge_u": "lt_u", "gt_u": "le_u", "le_u": "gt_u",
           "eq": "ne", "ne": "eq"}
_CMP_CODE = {
    op.I32_EQ: "eq", op.I32_NE: "ne",
    op.I32_LT_S: "lt_s", op.I32_LT_U: "lt_u",
    op.I32_GT_S: "gt_s", op.I32_GT_U: "gt_u",
    op.I32_LE_S: "le_s", op.I32_LE_U: "le_u",
    op.I32_GE_S: "ge_s", op.I32_GE_U: "ge_u",
}

Env = Dict[int, Interval]


def _refine(env: Env, idx: int, code: str, c: int) -> Optional[Env]:
    """Constrain ``env[idx]`` with ``pred(s32(local), c)`` being true.

    Returns None when the constraint is unsatisfiable (infeasible edge).
    """
    lo, hi = env.get(idx, TOP)
    if code == "lt_s":
        hi = min(hi, c - 1)
    elif code == "le_s":
        hi = min(hi, c)
    elif code == "gt_s":
        lo = max(lo, c + 1)
    elif code == "ge_s":
        lo = max(lo, c)
    elif code == "eq":
        lo, hi = max(lo, c), min(hi, c)
    elif code == "ne":
        if lo == hi == c:
            return None
    elif code in ("lt_u", "le_u"):
        # u(local) <= bound with a non-negative bound pins local to
        # [0, bound]: any negative s32 has an unsigned value >= 2^31.
        if c >= 0:
            bound = c - 1 if code == "lt_u" else c
            lo, hi = max(lo, 0), min(hi, bound)
    elif code in ("gt_u", "ge_u"):
        # Only meaningful when the local is already known non-negative.
        if lo >= 0 and c >= 0:
            lo = max(lo, c + 1 if code == "gt_u" else c)
    if lo > hi:
        return None
    out = dict(env)
    if (lo, hi) == TOP:
        out.pop(idx, None)
    else:
        out[idx] = (lo, hi)
    return out


class RangeAnalysis(dataflow.DataflowAnalysis):
    direction = "forward"

    def __init__(self, module: Module, func: Function,
                 cfg: ControlFlowGraph) -> None:
        self.module = module
        self.func = func
        self.cfg = cfg
        ftype = module.types[func.type_index]
        self.num_params = len(ftype.params)
        all_types = list(ftype.params) + func.local_types()
        self.i32_locals = {i for i, t in enumerate(all_types) if t == I32}
        # Condition entry consumed by each block's terminator, refreshed
        # every time the block's transfer runs.
        self._conds: Dict[int, object] = {}

    # -- lattice ----------------------------------------------------------

    def boundary(self) -> Env:
        return {i: (0, 0) for i in self.i32_locals if i >= self.num_params}

    def join(self, a: Env, b: Env) -> Env:
        out: Env = {}
        for idx, iv in a.items():
            other = b.get(idx)
            if other is not None:
                merged = _hull(iv, other)
                if merged != TOP:
                    out[idx] = merged
        return out

    def widen(self, old: Env, new: Env) -> Env:
        out: Env = {}
        for idx, (nlo, nhi) in new.items():
            olo, ohi = old.get(idx, (None, None))
            if olo is None:
                continue
            lo = nlo if nlo >= olo else NEG_INF
            hi = nhi if nhi <= ohi else POS_INF
            if (lo, hi) != TOP:
                out[idx] = (lo, hi)
        return out

    # -- transfer ---------------------------------------------------------

    def transfer(self, block: BasicBlock, fact: Env) -> Env:
        return self._walk(block, fact, None)

    def edge(self, block: BasicBlock, succ_pos: int,
             fact: Env) -> Optional[Env]:
        if block.true_succ < 0:
            return fact
        cond = self._conds.get(block.index)
        if cond is None:
            return fact
        truth = succ_pos == 0       # succs[0] is the condition-true edge
        while cond[0] == "EQZ":
            cond = cond[1]
            truth = not truth
        if cond[0] != "CMP":
            return fact
        _, code, idx, c = cond
        if not truth:
            code = _NEGATE[code]
        return _refine(fact, idx, code, c)

    # -- block walker ------------------------------------------------------

    def _interval_of(self, entry, env: Env) -> Interval:
        kind = entry[0]
        if kind == "L":
            return env.get(entry[1], TOP)
        if kind == "C":
            return (entry[1], entry[1])
        if kind == "V":
            return entry[1]
        return (0, 1)               # CMP / EQZ results are booleans

    def _protect(self, stack: List, env: Env, idx: int) -> None:
        """Snapshot stacked references to local ``idx`` before redefining."""
        for i, entry in enumerate(stack):
            if entry[0] == "L" and entry[1] == idx:
                stack[i] = ("V", env.get(idx, TOP))

    def _walk(self, block: BasicBlock, fact: Env, record) -> Env:
        env = dict(fact)
        stack: List = []
        body = self.cfg.body
        module = self.module
        membytes = None
        if module.memories:
            membytes = module.memories[0].minimum * PAGE_SIZE
        cond = None

        def pop():
            return stack.pop() if stack else ("V", TOP)

        for pc in range(block.start, block.end):
            ins = body[pc]
            o = ins[0]
            if o == op.I32_CONST:
                stack.append(("C", ins[1]))
            elif o == op.LOCAL_GET:
                idx = ins[1]
                if idx in self.i32_locals:
                    stack.append(("L", idx))
                else:
                    stack.append(("V", TOP))
            elif o in (op.LOCAL_SET, op.LOCAL_TEE):
                entry = pop()
                idx = ins[1]
                if idx in self.i32_locals:
                    iv = self._interval_of(entry, env)
                    self._protect(stack, env, idx)
                    if iv == TOP:
                        env.pop(idx, None)
                    else:
                        env[idx] = iv
                    if o == op.LOCAL_TEE:
                        stack.append(("L", idx))
                elif o == op.LOCAL_TEE:
                    stack.append(entry)
            elif o in op.IS_LOAD:
                addr = pop()
                if record is not None:
                    iv = self._interval_of(addr, env)
                    offset = ins[2]
                    width = op.ACCESS_WIDTH[o]
                    ok = (membytes is not None and iv[0] >= 0
                          and iv[1] + offset + width <= membytes)
                    record(pc, ok)
                stack.append(("V", TOP))
            elif o in op.IS_STORE:
                pop()               # value
                addr = pop()
                if record is not None:
                    iv = self._interval_of(addr, env)
                    offset = ins[2]
                    width = op.ACCESS_WIDTH[o]
                    ok = (membytes is not None and iv[0] >= 0
                          and iv[1] + offset + width <= membytes)
                    record(pc, ok)
            elif o in _CMP_CODE:
                b = pop()
                a = pop()
                code = _CMP_CODE[o]
                if a[0] == "L" and b[0] == "C":
                    stack.append(("CMP", code, a[1], b[1]))
                elif a[0] == "C" and b[0] == "L":
                    stack.append(("CMP", _SWAP[code], b[1], a[1]))
                else:
                    stack.append(("V", (0, 1)))
            elif o == op.I32_EQZ:
                inner = pop()
                if inner[0] in ("CMP", "EQZ"):
                    stack.append(("EQZ", inner))
                else:
                    iv = self._interval_of(inner, env)
                    if iv[0] > 0 or iv[1] < 0:
                        stack.append(("C", 0 if iv[0] > 0 else 1))
                    else:
                        stack.append(("V", (0, 1)))
            elif o in _ARITH:
                b = pop()
                a = pop()
                iv = _ARITH[o](self._interval_of(a, env),
                               self._interval_of(b, env), b, env)
                if iv[0] == iv[1]:
                    stack.append(("C", iv[0]))
                else:
                    stack.append(("V", iv))
            elif o == op.SELECT:
                pop()
                b = pop()
                a = pop()
                stack.append(("V", _hull(self._interval_of(a, env),
                                         self._interval_of(b, env))))
            elif o in (op.CALL, op.CALL_INDIRECT):
                if o == op.CALL:
                    ftype = module.func_type(ins[1])
                else:
                    ftype = module.types[ins[1]]
                    pop()           # table index
                for _ in ftype.params:
                    pop()
                for _ in ftype.results:
                    stack.append(("V", TOP))
            elif o in (op.BR_IF, op.IF):
                cond = pop()
            elif o == op.BR_TABLE:
                pop()
            elif o in (op.BLOCK, op.LOOP, op.END, op.ELSE, op.NOP,
                       op.BR, op.RETURN, op.UNREACHABLE):
                pass
            elif o == op.DROP:
                pop()
            elif o == op.GLOBAL_SET:
                pop()
            elif o == op.GLOBAL_GET:
                stack.append(("V", TOP))
            elif o == op.MEMORY_SIZE:
                stack.append(("V", (0, U32_MAX // PAGE_SIZE)))
            elif o == op.MEMORY_GROW:
                pop()
                stack.append(("V", TOP))
            elif o in op.SIGNATURES:
                params, results = op.SIGNATURES[o]
                for _ in params:
                    pop()
                for _ in results:
                    stack.append(("V", TOP))
            else:
                stack.clear()       # unknown opcode: be conservative
        self._conds[block.index] = cond
        return env


# -- interval arithmetic -----------------------------------------------------
# Each entry: f(a_iv, b_iv, b_entry, env) -> Interval.  ``b_entry`` lets
# shift/div transfer functions require a constant right operand.


def _const_of(entry) -> Optional[int]:
    return entry[1] if entry[0] == "C" else None


def _iv_add(a, b, be, env):
    return _guard(a[0] + b[0], a[1] + b[1])


def _iv_sub(a, b, be, env):
    return _guard(a[0] - b[1], a[1] - b[0])


def _iv_mul(a, b, be, env):
    if a == TOP or b == TOP:
        return TOP
    corners = [a[0] * b[0], a[0] * b[1], a[1] * b[0], a[1] * b[1]]
    return _guard(min(corners), max(corners))


def _iv_div_u(a, b, be, env):
    c = _const_of(be)
    if c is None or c <= 0:
        return TOP
    if a[0] >= 0:
        return _guard(a[0] // c, a[1] // c)
    if c >= 2:
        return (0, U32_MAX // c)    # always fits in s32 once c >= 2
    return TOP


def _iv_div_s(a, b, be, env):
    c = _const_of(be)
    if c is None or c <= 0 or a[0] < 0:
        return TOP                  # truncation toward zero vs floor
    return _guard(a[0] // c, a[1] // c)


def _iv_rem_u(a, b, be, env):
    c = _const_of(be)
    if c is None or c <= 0:
        return TOP
    return (0, c - 1)


def _iv_rem_s(a, b, be, env):
    c = _const_of(be)
    if c is None or c <= 0 or a[0] < 0:
        return TOP
    return (0, min(a[1], c - 1))


def _iv_and(a, b, be, env):
    c = _const_of(be)
    if c is not None and c >= 0:
        hi = c if a[0] < 0 else min(a[1], c)
        return (0, max(hi, 0))
    if a[0] >= 0:
        return (0, a[1])            # masking a non-negative never grows it
    return TOP


def _iv_or(a, b, be, env):
    c = _const_of(be)
    if c is not None and c >= 0 and a[0] >= 0:
        bits = max(a[1].bit_length(), c.bit_length())
        return _guard(0, (1 << bits) - 1)
    return TOP


def _iv_xor(a, b, be, env):
    return _iv_or(a, b, be, env)


def _iv_shl(a, b, be, env):
    c = _const_of(be)
    if c is None:
        return TOP
    c &= 31
    if a == TOP:
        return TOP
    return _guard(a[0] << c, a[1] << c) if a[0] >= 0 else TOP


def _iv_shr_u(a, b, be, env):
    c = _const_of(be)
    if c is None:
        return TOP
    c &= 31
    if a[0] >= 0:
        return (a[0] >> c, a[1] >> c)
    if c > 0:
        return (0, U32_MAX >> c)
    return TOP


def _iv_shr_s(a, b, be, env):
    c = _const_of(be)
    if c is None or a[0] < 0:
        return TOP
    c &= 31
    return (a[0] >> c, a[1] >> c)


_ARITH = {
    op.I32_ADD: _iv_add,
    op.I32_SUB: _iv_sub,
    op.I32_MUL: _iv_mul,
    op.I32_DIV_U: _iv_div_u,
    op.I32_DIV_S: _iv_div_s,
    op.I32_REM_U: _iv_rem_u,
    op.I32_REM_S: _iv_rem_s,
    op.I32_AND: _iv_and,
    op.I32_OR: _iv_or,
    op.I32_XOR: _iv_xor,
    op.I32_SHL: _iv_shl,
    op.I32_SHR_U: _iv_shr_u,
    op.I32_SHR_S: _iv_shr_s,
}


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FunctionRanges:
    """Per-function result of the range analysis."""

    inbounds: frozenset        # pcs of loads/stores proven in bounds
    mem_ops: int               # reachable loads/stores examined
    unreachable_mem_ops: int   # loads/stores in dead code (never execute)


def function_ranges(module: Module, func: Function) -> FunctionRanges:
    cfg = build_cfg(func, module)
    analysis = RangeAnalysis(module, func, cfg)
    in_facts, _ = dataflow.solve(cfg, analysis)

    proved = set()
    seen = set()

    for block in cfg.blocks[:-1]:
        fact = in_facts[block.index]
        if fact is None:
            continue

        def record(pc: int, ok: bool) -> None:
            seen.add(pc)
            if ok:
                proved.add(pc)
            else:
                proved.discard(pc)

        analysis._walk(block, fact, record)

    dead = 0
    for pc, ins in enumerate(func.body):
        if pc not in seen and (ins[0] in op.IS_LOAD or ins[0] in op.IS_STORE):
            dead += 1
    return FunctionRanges(inbounds=frozenset(proved), mem_ops=len(seen),
                          unreachable_mem_ops=dead)


def provable_inbounds(module: Module, func: Function) -> frozenset:
    """Body pcs of ``func`` whose memory access can never trap."""
    return function_ranges(module, func).inbounds
