"""Wasm module lints with stable diagnostic IDs and deterministic output.

Every diagnostic carries a stable ID so baselines and CI gates can match
on identity rather than message text:

========  =============================================================
WA001     unreachable code (pcs no execution can reach)
WA002     dead local store (``local.set``/``tee`` whose value is never read)
WA003     dead function (no entry root can ever reach it)
WA004     dead global (module-defined, never read, not exported)
WA005     redundant bounds checks (accesses provably in bounds that the
          midend left guarded — eliminable by a bounds-check tier)
WA006     non-minimal LEB128 encoding in the binary
WA007     never-called indirect target (listed in the funcref table but
          no reachable ``call_indirect`` has a matching type)
WA008     dead local (declared but never read or written)
========  =============================================================

Diagnostics are pure functions of the decoded module (plus
:class:`~repro.wasm.decoder.DecodeStats` for WA006, which is a property
of the *bytes*), sorted by ``(id, function index, pc)`` — byte-identical
output on every run is the contract the audit gate builds on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..wasm import opcodes as op
from ..wasm.decoder import DecodeStats
from ..wasm.module import KIND_GLOBAL, Module
from .callgraph import CallGraph, build_call_graph
from .cfg import build_cfg
from .liveness import dead_stores
from .ranges import function_ranges

#: Bump when lint semantics change; part of fuzz static-oracle cache keys.
LINT_VERSION = 1


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One lint finding, ordered for deterministic reports."""

    id: str
    func_index: int      # joint index space; -1 for module-level findings
    pc: int              # body pc; -1 when not instruction-anchored
    func: str            # display name; "" for module-level findings
    message: str

    def key(self) -> str:
        """Stable identity string used by baselines."""
        return f"{self.id} {self.func_index}:{self.pc} {self.message}"

    def format(self, modname: str = "module") -> str:
        where = f"{modname}:{self.func}" if self.func else modname
        if self.pc >= 0:
            where += f":pc={self.pc}"
        return f"{where}: {self.id}: {self.message}"


def _name_of(graph: CallGraph, index: int) -> str:
    return graph.names[index]


def lint_module(module: Module, stats: Optional[DecodeStats] = None,
                graph: Optional[CallGraph] = None) -> List[Diagnostic]:
    """Run every lint over ``module``; deterministic sorted output.

    ``stats`` (from :func:`repro.wasm.decoder.decode_module_with_stats`)
    enables WA006; without it byte-level encoding lints are skipped.
    """
    graph = graph if graph is not None else build_call_graph(module)
    diags: List[Diagnostic] = []
    num_imported = graph.num_imported

    for i, func in enumerate(module.functions):
        index = num_imported + i
        name = _name_of(graph, index)
        cfg = build_cfg(func, module)

        dead_pcs = cfg.unreachable_pcs()
        if dead_pcs:
            diags.append(Diagnostic(
                id="WA001", func_index=index, pc=dead_pcs[0], func=name,
                message=(f"{len(dead_pcs)} unreachable instruction(s) "
                         f"starting at pc {dead_pcs[0]}")))

        for pc in dead_stores(module, func):
            local = func.body[pc][1]
            diags.append(Diagnostic(
                id="WA002", func_index=index, pc=pc, func=name,
                message=(f"{op.name_of(func.body[pc][0])} to local "
                         f"#{local} is never read")))

        ranges = function_ranges(module, func)
        if ranges.inbounds:
            first = min(ranges.inbounds)
            diags.append(Diagnostic(
                id="WA005", func_index=index, pc=first, func=name,
                message=(f"{len(ranges.inbounds)} of {ranges.mem_ops} "
                         "memory accesses provably in bounds "
                         "(checks eliminable)")))

        diags.extend(_dead_locals(module, func, index, name))

    for index in graph.dead_functions():
        if index in graph.roots:
            continue
        diags.append(Diagnostic(
            id="WA003", func_index=index, pc=-1,
            func=_name_of(graph, index),
            message="function is never called from any export or start"))

    diags.extend(_dead_globals(module))

    if stats is not None and getattr(stats, "non_minimal", ()):
        offsets = list(stats.non_minimal)
        shown = ", ".join(str(o) for o in offsets[:4])
        more = f" (+{len(offsets) - 4} more)" if len(offsets) > 4 else ""
        diags.append(Diagnostic(
            id="WA006", func_index=-1, pc=-1, func="",
            message=(f"{len(offsets)} non-minimal LEB128 encoding(s) at "
                     f"byte offset(s) {shown}{more}")))

    diags.extend(_never_called_indirect(graph))
    return sorted(diags)


def _dead_locals(module: Module, func, index: int,
                 name: str) -> List[Diagnostic]:
    """WA008: declared locals (excluding params) never referenced."""
    ftype = module.types[func.type_index]
    num_params = len(ftype.params)
    declared = num_params + sum(c for c, _vt in func.local_decls)
    if declared == num_params:
        return []
    used = set()
    for ins in func.body:
        if ins[0] in (op.LOCAL_GET, op.LOCAL_SET, op.LOCAL_TEE):
            used.add(ins[1])
    return [Diagnostic(
        id="WA008", func_index=index, pc=-1, func=name,
        message=f"local #{local} is declared but never used")
        for local in range(num_params, declared) if local not in used]


def _dead_globals(module: Module) -> List[Diagnostic]:
    """WA004: module-defined globals that nothing ever reads."""
    num_imported = module.num_imported_globals
    exported = {e.index for e in module.exports if e.kind == KIND_GLOBAL}
    read = set()
    for func in module.functions:
        for ins in func.body:
            if ins[0] == op.GLOBAL_GET:
                read.add(ins[1])
    for g in module.globals:
        for ins in g.init:
            if ins[0] == op.GLOBAL_GET:
                read.add(ins[1])
    out = []
    for i in range(len(module.globals)):
        index = num_imported + i
        if index in read or index in exported:
            continue
        out.append(Diagnostic(
            id="WA004", func_index=-1, pc=-1, func="",
            message=f"global #{index} is written but never read"))
    return out


def _never_called_indirect(graph: CallGraph) -> List[Diagnostic]:
    """WA007: table entries no reachable call_indirect can select."""
    if graph.imprecise_indirect:
        return []          # imported table: contents unknowable statically
    reachable = graph.reachable()
    out = []
    for target in graph.table_targets:
        # Reachable through *any* edge (direct call, root, or a resolved
        # indirect edge) means the entry is live.
        if target in reachable or target in graph.roots:
            continue
        out.append(Diagnostic(
            id="WA007", func_index=target, pc=-1,
            func=_name_of(graph, target),
            message=("listed in the funcref table but no reachable "
                     "call_indirect has a matching type")))
    return out
