"""MiniC sanitizer: definite-UB detection with zero false positives.

Backs ``wasicc --analyze``.  The sanitizer builds a statement-level CFG
per function (the same shape the Wasm CFG exposes, so it runs on the
generic engine in :mod:`repro.analysis.dataflow`) and reports only
*must* facts:

* ``div-by-zero``     — integer ``/``/``%`` whose divisor provably
                        evaluates to 0 on every path reaching it.
* ``uninitialized``   — read of a scalar local that no path has
                        assigned (Wasm zero-initializes locals, so the
                        program is deterministic — but the C it models
                        is UB).
* ``oob-index``       — constant index outside a known array bound
                        (``&a[len]`` one-past-the-end is allowed).
* ``unreachable``     — statements no execution can reach.

"May" facts are never reported, so a clean program stays clean: uses
inside short-circuit arms or ternaries are exempt from value-dependent
findings, address-taken/array locals are never tracked, and constant
folding refuses values that could wrap 32-bit arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..minic import ast
from . import dataflow

_WRAP_LIMIT = 1 << 31      # folded values at or past this are "unknown"


@dataclass(frozen=True)
class Finding:
    kind: str          # div-by-zero | uninitialized | oob-index | unreachable
    function: str
    line: int
    message: str

    def format(self, filename: str = "<source>") -> str:
        return (f"{filename}:{self.line}: warning: [{self.kind}] "
                f"{self.message} (in '{self.function}')")


# ---------------------------------------------------------------------------
# Statement-level CFG
# ---------------------------------------------------------------------------


@dataclass
class _Node:
    index: int
    actions: List[ast.Expr] = field(default_factory=list)
    decls: List[ast.VarDecl] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)
    # Interleaved program order of actions/decls for the walker.
    order: List[Tuple[str, object]] = field(default_factory=list)
    # Two-way branch terminator: (cond expr, true succ, false succ).
    # Lets the dataflow refine constant facts per outgoing edge, so
    # ``if (d != 0) x / d`` is not a division-by-zero.
    branch: Optional[Tuple[object, int, int]] = None

    def add_expr(self, expr: ast.Expr) -> None:
        self.actions.append(expr)
        self.order.append(("expr", expr))

    def add_decl(self, decl: ast.VarDecl) -> None:
        self.decls.append(decl)
        self.order.append(("decl", decl))

    @property
    def first_line(self) -> Optional[int]:
        for _, item in self.order:
            line = getattr(item, "line", 0)
            if line:
                return line
        return None


class _StmtGraph:
    """CFG-protocol object over MiniC statements (see dataflow.solve)."""

    def __init__(self) -> None:
        self.blocks: List[_Node] = [_Node(0)]
        self.entry = 0
        self.exit_index = -1      # fixed up by the builder

    def new_node(self) -> _Node:
        node = _Node(len(self.blocks))
        self.blocks.append(node)
        return node

    def edge(self, a: _Node, b: _Node) -> None:
        a.succs.append(b.index)
        b.preds.append(a.index)

    def rpo(self) -> List[int]:
        seen: Set[int] = set()
        order: List[int] = []
        stack: List[Tuple[int, bool]] = [(self.entry, False)]
        while stack:
            node, done = stack.pop()
            if done:
                order.append(node)
                continue
            if node in seen:
                continue
            seen.add(node)
            stack.append((node, True))
            for succ in reversed(self.blocks[node].succs):
                if succ not in seen:
                    stack.append((succ, False))
        order.reverse()
        return order


def _static_truth(expr: Optional[ast.Expr]) -> Optional[bool]:
    """Fold an environment-free constant condition; None when unknown."""
    value = _fold_pure(expr)
    if value is None:
        return None
    return value != 0


def _fold_pure(expr: Optional[ast.Expr]) -> Optional[int]:
    if isinstance(expr, ast.IntLit):
        return expr.value if abs(expr.value) < _WRAP_LIMIT else None
    if isinstance(expr, ast.Cast):
        return _fold_pure(expr.operand)
    if isinstance(expr, ast.Unary):
        v = _fold_pure(expr.operand)
        if v is None:
            return None
        if expr.op == "-":
            v = -v
        elif expr.op == "~":
            v = ~v
        elif expr.op == "!":
            v = int(v == 0)
        return v if abs(v) < _WRAP_LIMIT else None
    if isinstance(expr, ast.Ident) and expr.binding \
            and expr.binding[0] == "enum":
        return expr.binding[1]
    return None


class _GraphBuilder:
    def __init__(self) -> None:
        self.graph = _StmtGraph()
        self.current: Optional[_Node] = self.graph.blocks[0]
        self.break_stack: List[_Node] = []
        self.continue_stack: List[_Node] = []
        self._pending_returns: List[_Node] = []

    # -- helpers -----------------------------------------------------------

    def _ensure(self) -> _Node:
        # Statements after return/break/continue: fresh node, no preds.
        if self.current is None:
            self.current = self.graph.new_node()
        return self.current

    def _goto(self, target: _Node) -> None:
        if self.current is not None:
            self.graph.edge(self.current, target)
        self.current = None

    # -- construction ------------------------------------------------------

    def build(self, func: ast.FuncDef) -> _StmtGraph:
        self.stmt(func.body)
        exit_node = self.graph.new_node()
        if self.current is not None:
            self.graph.edge(self.current, exit_node)
        self.graph.exit_index = exit_node.index
        # Wire Return edges recorded along the way.
        for node in self._pending_returns:
            self.graph.edge(node, exit_node)
        return self.graph

    def stmt(self, s: Optional[ast.Stmt]) -> None:
        if s is None:
            return
        if isinstance(s, ast.Block):          # includes DeclGroup
            for child in s.statements:
                self.stmt(child)
        elif isinstance(s, ast.VarDecl):
            self._ensure().add_decl(s)
        elif isinstance(s, ast.ExprStmt):
            if s.expr is not None:
                self._ensure().add_expr(s.expr)
        elif isinstance(s, ast.If):
            self._if(s)
        elif isinstance(s, ast.While):
            self._while(s)
        elif isinstance(s, ast.DoWhile):
            self._do_while(s)
        elif isinstance(s, ast.For):
            self._for(s)
        elif isinstance(s, ast.Return):
            node = self._ensure()
            if s.value is not None:
                node.add_expr(s.value)
            self._pending_returns.append(node)
            self.current = None
        elif isinstance(s, ast.Break):
            if self.break_stack:
                self._goto(self.break_stack[-1])
            else:
                self.current = None
        elif isinstance(s, ast.Continue):
            if self.continue_stack:
                self._goto(self.continue_stack[-1])
            else:
                self.current = None
        elif isinstance(s, ast.Switch):
            self._switch(s)
        # Unknown statement kinds fall through as no-ops.

    def _if(self, s: ast.If) -> None:
        node = self._ensure()
        node.add_expr(s.cond)
        truth = _static_truth(s.cond)
        then_n = self.graph.new_node()
        else_n = self.graph.new_node() if s.other is not None else None
        join = self.graph.new_node()
        if truth is not False:
            self.graph.edge(node, then_n)
        if truth is not True:
            self.graph.edge(node, else_n if else_n is not None else join)
        if truth is None:
            node.branch = (s.cond, then_n.index,
                           (else_n if else_n is not None else join).index)
        self.current = then_n
        self.stmt(s.then)
        if self.current is not None:
            self.graph.edge(self.current, join)
        if else_n is not None:
            self.current = else_n
            self.stmt(s.other)
            if self.current is not None:
                self.graph.edge(self.current, join)
        self.current = join

    def _while(self, s: ast.While) -> None:
        header = self.graph.new_node()
        self._goto(header)
        header.add_expr(s.cond)
        truth = _static_truth(s.cond)
        body = self.graph.new_node()
        exit_n = self.graph.new_node()
        if truth is not False:
            self.graph.edge(header, body)
        if truth is not True:
            self.graph.edge(header, exit_n)
        if truth is None:
            header.branch = (s.cond, body.index, exit_n.index)
        self.break_stack.append(exit_n)
        self.continue_stack.append(header)
        self.current = body
        self.stmt(s.body)
        if self.current is not None:
            self.graph.edge(self.current, header)
        self.break_stack.pop()
        self.continue_stack.pop()
        self.current = exit_n

    def _do_while(self, s: ast.DoWhile) -> None:
        body = self.graph.new_node()
        self._goto(body)
        latch = self.graph.new_node()
        exit_n = self.graph.new_node()
        self.break_stack.append(exit_n)
        self.continue_stack.append(latch)
        self.current = body
        self.stmt(s.body)
        if self.current is not None:
            self.graph.edge(self.current, latch)
        latch.add_expr(s.cond)
        truth = _static_truth(s.cond)
        if truth is not False:
            self.graph.edge(latch, body)
        if truth is not True:
            self.graph.edge(latch, exit_n)
        if truth is None:
            latch.branch = (s.cond, body.index, exit_n.index)
        self.break_stack.pop()
        self.continue_stack.pop()
        self.current = exit_n

    def _for(self, s: ast.For) -> None:
        self.stmt(s.init)
        header = self.graph.new_node()
        self._goto(header)
        truth = True               # no condition means "forever"
        if s.cond is not None:
            header.add_expr(s.cond)
            truth = _static_truth(s.cond)
        body = self.graph.new_node()
        exit_n = self.graph.new_node()
        step = self.graph.new_node()
        if s.step is not None:
            step.add_expr(s.step)
        self.graph.edge(step, header)
        if truth is not False:
            self.graph.edge(header, body)
        if truth is not True:
            self.graph.edge(header, exit_n)
        if truth is None:
            header.branch = (s.cond, body.index, exit_n.index)
        self.break_stack.append(exit_n)
        self.continue_stack.append(step)
        self.current = body
        self.stmt(s.body)
        if self.current is not None:
            self.graph.edge(self.current, step)
        self.break_stack.pop()
        self.continue_stack.pop()
        self.current = exit_n

    def _switch(self, s: ast.Switch) -> None:
        dispatch = self._ensure()
        dispatch.add_expr(s.scrutinee)
        exit_n = self.graph.new_node()
        case_nodes = [self.graph.new_node() for _ in s.cases]
        has_default = any(c.value is None for c in s.cases)
        for node in case_nodes:
            self.graph.edge(dispatch, node)
        if not has_default:
            self.graph.edge(dispatch, exit_n)
        self.break_stack.append(exit_n)
        self.current = None
        for i, case in enumerate(s.cases):
            if self.current is not None:       # fallthrough from prior arm
                self.graph.edge(self.current, case_nodes[i])
            self.current = case_nodes[i]
            for child in case.body:
                self.stmt(child)
        if self.current is not None:
            self.graph.edge(self.current, exit_n)
        self.break_stack.pop()
        self.current = exit_n


def build_stmt_graph(func: ast.FuncDef) -> _StmtGraph:
    return _GraphBuilder().build(func)


# ---------------------------------------------------------------------------
# Abstract state + expression walker
# ---------------------------------------------------------------------------


def _tracked(decl: Optional[ast.VarDecl]) -> bool:
    """Scalar wasm-register locals only: arrays and address-taken
    locals live in shadow-stack memory and are excluded from both the
    uninitialized-use and the constant analyses."""
    if not isinstance(decl, ast.VarDecl):
        return False
    t = decl.var_type
    if t is None or t.is_array or decl.needs_memory:
        return False
    return True


def _local_decl(expr: ast.Expr) -> Optional[ast.VarDecl]:
    if isinstance(expr, ast.Ident) and expr.binding \
            and expr.binding[0] == "local":
        decl = expr.binding[1]
        if _tracked(decl):
            return decl
    return None


def _array_of(expr: ast.Expr):
    """Static array type of ``expr`` when it denotes a whole array."""
    if isinstance(expr, ast.Ident) and expr.binding \
            and expr.binding[0] in ("local", "global"):
        t = expr.binding[1].var_type
        if t is not None and t.is_array and t.length:
            return t
    if isinstance(expr, ast.Index):
        outer = _array_of(expr.base)
        if outer is not None and outer.elem is not None \
                and outer.elem.is_array and outer.elem.length:
            return outer.elem
    return None


class _Walker:
    """Evaluates one node's expressions over (assigned, consts).

    With ``emit`` set, reports findings; with ``emit=None`` it is the
    pure transfer function.  ``conditional`` marks positions whose
    execution is not implied by reaching the node (short-circuit arms,
    ternary arms): value findings are suppressed there and constant
    knowledge is weakened instead of replaced.
    """

    def __init__(self, assigned: Set[int], consts: Dict[int, int],
                 emit=None, function: str = "") -> None:
        self.assigned = assigned
        self.consts = consts
        self.emit = emit
        self.function = function

    # -- findings ----------------------------------------------------------

    def _report(self, kind: str, line: int, message: str) -> None:
        if self.emit is not None:
            self.emit(Finding(kind, self.function, line, message))

    # -- dispatch ----------------------------------------------------------

    def expr(self, e: Optional[ast.Expr], conditional: bool = False,
             past_end_ok: bool = False) -> Optional[int]:
        if e is None:
            return None
        if isinstance(e, ast.IntLit):
            return e.value if abs(e.value) < _WRAP_LIMIT else None
        if isinstance(e, (ast.FloatLit, ast.StrLit, ast.SizeofType)):
            return None
        if isinstance(e, ast.Ident):
            return self._ident(e, conditional)
        if isinstance(e, ast.Unary):
            return self._unary(e, conditional)
        if isinstance(e, ast.AddrOf):
            self._addr_of(e, conditional)
            return None
        if isinstance(e, ast.Deref):
            self.expr(e.operand, conditional)
            return None
        if isinstance(e, ast.Binary):
            return self._binary(e, conditional)
        if isinstance(e, ast.Assign):
            return self._assign(e, conditional)
        if isinstance(e, ast.IncDec):
            return self._incdec(e, conditional)
        if isinstance(e, ast.Cond):
            self.expr(e.cond, conditional)
            self.expr(e.then, True)
            self.expr(e.other, True)
            return None
        if isinstance(e, ast.Call):
            if not isinstance(e.func, ast.Ident):
                self.expr(e.func, conditional)
            for arg in e.args:
                self.expr(arg, conditional)
            return None
        if isinstance(e, ast.Index):
            return self._index(e, conditional, past_end_ok)
        if isinstance(e, ast.Cast):
            v = self.expr(e.operand, conditional)
            t = e.target_type
            if v is not None and t is not None and t.is_integer \
                    and t.size >= 4:
                return v
            return None
        return None

    # -- expression kinds --------------------------------------------------

    def _ident(self, e: ast.Ident, conditional: bool) -> Optional[int]:
        if e.binding and e.binding[0] == "enum":
            return e.binding[1]
        decl = _local_decl(e)
        if decl is None:
            return None
        if id(decl) not in self.assigned and not conditional:
            self._report(
                "uninitialized", e.line,
                f"use of uninitialized variable '{decl.name}'")
        return self.consts.get(id(decl))

    def _unary(self, e: ast.Unary, conditional: bool) -> Optional[int]:
        v = self.expr(e.operand, conditional)
        if v is None:
            return None
        if e.op == "-":
            v = -v
        elif e.op == "~":
            v = ~v
        elif e.op == "!":
            v = int(v == 0)
        return v if abs(v) < _WRAP_LIMIT else None

    def _addr_of(self, e: ast.AddrOf, conditional: bool) -> None:
        inner = e.operand
        if isinstance(inner, ast.Ident):
            return                 # taking an address is not a read
        if isinstance(inner, ast.Index):
            self._index(inner, conditional, past_end_ok=True)
            return
        self.expr(inner, conditional)

    def _binary(self, e: ast.Binary, conditional: bool) -> Optional[int]:
        opname = e.op
        if opname in ("&&", "||"):
            lv = self.expr(e.left, conditional)
            self.expr(e.right, True)
            if lv is not None:
                if opname == "&&" and lv == 0:
                    return 0
                if opname == "||" and lv != 0:
                    return 1
            return None
        lv = self.expr(e.left, conditional)
        rv = self.expr(e.right, conditional)
        if opname in ("/", "%"):
            is_int = e.ctype is not None and e.ctype.is_integer
            if rv == 0 and is_int and not conditional:
                self._report("div-by-zero", e.line,
                             f"integer {'division' if opname == '/' else 'remainder'}"
                             f" by constant zero")
            if lv is None or rv is None or rv == 0 or not is_int \
                    or lv < 0 or rv < 0:
                return None
            return lv // rv if opname == "/" else lv % rv
        if lv is None or rv is None:
            return None
        v = _apply_binop(opname, lv, rv)
        if v is None or abs(v) >= _WRAP_LIMIT:
            return None
        return v

    def _assign(self, e: ast.Assign, conditional: bool) -> Optional[int]:
        rv = self.expr(e.value, conditional)
        target = e.target
        decl = _local_decl(target) if target is not None else None
        if e.op in ("/=", "%=") and rv == 0 and not conditional \
                and e.ctype is not None and e.ctype.is_integer:
            self._report("div-by-zero", e.line,
                         "integer division by constant zero")
        if decl is None:
            # Writing through memory: evaluate the lvalue subexpressions.
            if isinstance(target, ast.Index):
                self._index(target, conditional, past_end_ok=False)
            elif isinstance(target, ast.Deref):
                self.expr(target.operand, conditional)
            return None
        key = id(decl)
        new_value: Optional[int] = None
        if e.op == "=":
            new_value = rv
        else:
            if key not in self.assigned and not conditional:
                self._report(
                    "uninitialized", target.line,
                    f"use of uninitialized variable '{decl.name}'")
            old = self.consts.get(key)
            if old is not None and rv is not None:
                base_op = e.op[:-1]
                if base_op in ("/", "%"):
                    if rv != 0 and old >= 0 and rv > 0:
                        new_value = old // rv if base_op == "/" else old % rv
                else:
                    new_value = _apply_binop(base_op, old, rv)
        self.assigned.add(key)
        if conditional or new_value is None \
                or abs(new_value) >= _WRAP_LIMIT:
            self.consts.pop(key, None)
        else:
            self.consts[key] = new_value
        return new_value

    def _incdec(self, e: ast.IncDec, conditional: bool) -> Optional[int]:
        target = e.target
        decl = _local_decl(target) if target is not None else None
        if decl is None:
            if isinstance(target, ast.Index):
                self._index(target, conditional, past_end_ok=False)
            elif target is not None:
                self.expr(target, conditional)
            return None
        key = id(decl)
        if key not in self.assigned and not conditional:
            self._report("uninitialized", target.line,
                         f"use of uninitialized variable '{decl.name}'")
        old = self.consts.get(key)
        new_value = None
        if old is not None:
            new_value = old + 1 if e.op == "++" else old - 1
        self.assigned.add(key)
        if conditional or new_value is None \
                or abs(new_value) >= _WRAP_LIMIT:
            self.consts.pop(key, None)
        else:
            self.consts[key] = new_value
        return None

    def _index(self, e: ast.Index, conditional: bool,
               past_end_ok: bool) -> Optional[int]:
        self.expr(e.base, conditional)
        iv = self.expr(e.index, conditional)
        arr = _array_of(e.base)
        if arr is not None and iv is not None and not conditional:
            limit = arr.length + (1 if past_end_ok else 0)
            if iv < 0 or iv >= limit:
                self._report(
                    "oob-index", e.line,
                    f"index {iv} out of bounds for array of "
                    f"length {arr.length}")
        return None


def _apply_binop(opname: str, lv: int, rv: int) -> Optional[int]:
    if opname == "+":
        return lv + rv
    if opname == "-":
        return lv - rv
    if opname == "*":
        return lv * rv
    if opname == "<<":
        return lv << rv if 0 <= rv < 31 and lv >= 0 else None
    if opname == ">>":
        return lv >> rv if 0 <= rv < 32 and lv >= 0 else None
    if opname == "&":
        return lv & rv
    if opname == "|":
        return lv | rv
    if opname == "^":
        return lv ^ rv
    if opname == "<":
        return int(lv < rv)
    if opname == "<=":
        return int(lv <= rv)
    if opname == ">":
        return int(lv > rv)
    if opname == ">=":
        return int(lv >= rv)
    if opname == "==":
        return int(lv == rv)
    if opname == "!=":
        return int(lv != rv)
    return None


# ---------------------------------------------------------------------------
# Dataflow glue
# ---------------------------------------------------------------------------

_Fact = Tuple[frozenset, tuple]    # (assigned ids, sorted (id, value) pairs)


class _SanitizerAnalysis(dataflow.DataflowAnalysis):
    direction = "forward"

    def __init__(self, func: ast.FuncDef) -> None:
        self.func = func
        params = getattr(func, "param_decls", [])
        self.param_ids = frozenset(id(d) for d in params if _tracked(d))

    def boundary(self) -> _Fact:
        return (self.param_ids, ())

    def join(self, a: _Fact, b: _Fact) -> _Fact:
        assigned = a[0] | b[0]
        bconsts = dict(b[1])
        consts = tuple(sorted(
            (k, v) for k, v in a[1] if bconsts.get(k) == v))
        return (assigned, consts)

    def transfer(self, node: _Node, fact: _Fact) -> _Fact:
        assigned = set(fact[0])
        consts = dict(fact[1])
        _run_node(node, assigned, consts, emit=None, function="")
        return (frozenset(assigned), tuple(sorted(consts.items())))

    def edge(self, node: _Node, succ_pos: int, fact: _Fact) -> _Fact:
        if node.branch is None or fact is None:
            return fact
        cond, true_idx, false_idx = node.branch
        succ = node.succs[succ_pos]
        if true_idx == false_idx or succ not in (true_idx, false_idx):
            return fact
        return _refine_fact(cond, fact, succ == true_idx)


def _guard_facts(expr, is_true: bool) -> List[Tuple[int, int, bool]]:
    """Equality facts ``(decl id, value, is_eq)`` a branch edge proves."""
    while isinstance(expr, ast.Unary) and expr.op == "!":
        expr = expr.operand
        is_true = not is_true
    if isinstance(expr, ast.Ident):
        decl = _local_decl(expr)
        if decl is not None and _tracked(decl):
            # true edge proves x != 0; false edge proves x == 0
            return [(id(decl), 0, not is_true)]
        return []
    if isinstance(expr, ast.Binary):
        if expr.op == "&&" and is_true:
            return (_guard_facts(expr.left, True) +
                    _guard_facts(expr.right, True))
        if expr.op == "||" and not is_true:
            return (_guard_facts(expr.left, False) +
                    _guard_facts(expr.right, False))
        if expr.op in ("==", "!="):
            for a, b in ((expr.left, expr.right),
                         (expr.right, expr.left)):
                decl = _local_decl(a) if isinstance(a, ast.Ident) else None
                value = _fold_pure(b)
                if decl is not None and _tracked(decl) \
                        and value is not None:
                    return [(id(decl), value, (expr.op == "==") == is_true)]
    return []


def _refine_fact(cond, fact: _Fact, is_true: bool) -> _Fact:
    """Apply what taking this edge proves to the constant environment.

    Proven ``x == c`` pins the constant; proven ``x != c`` drops a
    contradicting must-constant (rather than marking the edge
    infeasible: defensively-guarded code should lint clean, not be
    reported unreachable).
    """
    facts = _guard_facts(cond, is_true)
    if not facts:
        return fact
    consts = dict(fact[1])
    changed = False
    for key, value, is_eq in facts:
        if is_eq:
            if consts.get(key) != value and abs(value) < _WRAP_LIMIT:
                consts[key] = value
                changed = True
        elif key in consts and consts[key] == value:
            del consts[key]
            changed = True
    if not changed:
        return fact
    return (fact[0], tuple(sorted(consts.items())))


def _run_node(node: _Node, assigned: Set[int], consts: Dict[int, int],
              emit, function: str) -> None:
    walker = _Walker(assigned, consts, emit, function)
    for tag, item in node.order:
        if tag == "expr":
            walker.expr(item)
        else:                       # VarDecl
            decl = item
            if decl.init is not None:
                value = walker.expr(decl.init)
                if _tracked(decl):
                    assigned.add(id(decl))
                    if value is not None:
                        consts[id(decl)] = value
                    else:
                        consts.pop(id(decl), None)
            elif decl.init_list is not None:
                for sub in decl.init_list:
                    walker.expr(sub)
            # Plain scalar declaration: stays unassigned.


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def analyze_function(func: ast.FuncDef) -> List[Finding]:
    if func.body is None:
        return []
    graph = build_stmt_graph(func)
    analysis = _SanitizerAnalysis(func)
    in_facts, _ = dataflow.solve(graph, analysis)

    findings: List[Finding] = []
    emit = findings.append

    reported: Set[int] = set()

    def emit_once(finding: Finding) -> None:
        key = hash((finding.kind, finding.line, finding.message))
        if key not in reported:
            reported.add(key)
            emit(finding)

    for node in graph.blocks:
        fact = in_facts[node.index]
        if fact is None:
            continue
        _run_node(node, set(fact[0]), dict(fact[1]), emit_once, func.name)

    # Dead code: report once per region entry (a dead node none of whose
    # predecessors is dead).
    dead = {node.index for node in graph.blocks
            if in_facts[node.index] is None}
    for node in graph.blocks:
        if node.index not in dead or not node.order:
            continue
        if any(p in dead for p in node.preds):
            continue
        line = node.first_line
        if line:
            emit_once(Finding("unreachable", func.name, line,
                              "unreachable code"))
    findings.sort(key=lambda f: (f.line, f.kind))
    return findings


def analyze_unit(unit: ast.TranslationUnit,
                 min_line: int = 0) -> List[Finding]:
    """Sanitize every function defined after ``min_line``."""
    findings: List[Finding] = []
    for func in unit.functions:
        if func.body is None or func.line <= min_line:
            continue
        findings.extend(analyze_function(func))
    findings.sort(key=lambda f: (f.line, f.function, f.kind))
    return findings


def analyze_source(source: str, defines: Optional[Dict[str, str]] = None,
                   include_libc: bool = True) -> List[Finding]:
    """Parse + typecheck ``source`` and sanitize the user functions.

    Mirrors ``compile_source``'s libc prepending, then rebases line
    numbers so findings point into the caller's source text.
    """
    from ..compiler.libc import LIBC_SOURCE
    from ..minic import analyze, parse

    if include_libc:
        full = LIBC_SOURCE + "\n" + source
        offset = LIBC_SOURCE.count("\n") + 1
    else:
        full = source
        offset = 0
    all_defines = {"TARGET_NATIVE": "0"}
    all_defines.update(defines or {})
    unit = parse(full, all_defines)
    analyze(unit)
    findings = analyze_unit(unit, min_line=offset)
    if not offset:
        return findings
    return [Finding(f.kind, f.function, f.line - offset, f.message)
            for f in findings if f.line > offset]
