"""Basic-block CFG reconstruction from structured Wasm control flow.

Wasm function bodies are flat instruction lists whose control flow is
expressed through nested ``block``/``loop``/``if`` regions and relative
branch labels.  This module resolves every label to a flat program
counter (the same resolution the interpreter's side tables perform) and
then partitions the body into maximal basic blocks.

Conventions:

* Program counters index ``func.body``; ``len(body)`` is the synthetic
  exit pc (function return).
* A branch *to a loop label* targets the ``loop`` opcode's own pc (the
  marker is a no-op, so re-traversing it is harmless and keeps the loop
  header at a stable block boundary).
* A branch *to a block/if label* targets the pc just after the matching
  ``end``.
* ``return``/``unreachable``/branches to the function label all target
  the exit pc.

Every pc of the body belongs to exactly one block; dead code after an
unconditional transfer forms blocks with no predecessors, which
:meth:`ControlFlowGraph.unreachable_pcs` reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import ReproError
from ..wasm import opcodes as op
from ..wasm.module import Function, Module

Instr = Tuple


class CFGError(ReproError):
    """Raised for structurally invalid bodies (unbalanced control)."""


# Terminator kinds recorded per branching pc.
_JUMP = "jump"          # br: one target
_BRANCH = "branch"      # br_if: taken target + fall-through
_IF = "if"              # if: fall-through (true) + else/end target (false)
_TABLE = "table"        # br_table: n case targets + default
_EXIT = "exit"          # return / unreachable


@dataclass
class BasicBlock:
    """Half-open pc range ``[start, end)`` with resolved successor edges."""

    index: int
    start: int
    end: int
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)
    # For conditional terminators, the successor taken when the condition
    # is non-zero / zero.  -1 when the block does not end in a condition.
    true_succ: int = -1
    false_succ: int = -1

    def pcs(self) -> range:
        return range(self.start, self.end)


class ControlFlowGraph:
    def __init__(self, body: Sequence[Instr], blocks: List[BasicBlock],
                 block_of: List[int],
                 targets: Dict[int, List]) -> None:
        self.body = body
        self.blocks = blocks                # last entry is the exit block
        self.block_of = block_of            # pc -> block index
        self.targets = targets              # branching pc -> [kind, *pcs]
        self.entry = 0
        self.exit_index = len(blocks) - 1

    # -- queries ----------------------------------------------------------

    def block_at(self, pc: int) -> int:
        """Block index containing ``pc`` (``len(body)`` maps to exit)."""
        if pc == len(self.body):
            return self.exit_index
        return self.block_of[pc]

    def branch_targets(self, pc: int) -> List[int]:
        """Flat target pcs of the branching instruction at ``pc``."""
        entry = self.targets.get(pc)
        if entry is None:
            return []
        if entry[0] == _EXIT:
            return [len(self.body)]
        return list(entry[1:])

    def reachable(self) -> Set[int]:
        """Block indices reachable from the entry block."""
        seen = {self.entry}
        stack = [self.entry]
        while stack:
            for succ in self.blocks[stack.pop()].succs:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen

    def rpo(self) -> List[int]:
        """Reverse postorder over reachable blocks (forward analyses)."""
        seen: Set[int] = set()
        order: List[int] = []
        # Iterative DFS with an explicit "exit" marker per node.
        stack: List[Tuple[int, bool]] = [(self.entry, False)]
        while stack:
            node, done = stack.pop()
            if done:
                order.append(node)
                continue
            if node in seen:
                continue
            seen.add(node)
            stack.append((node, True))
            for succ in reversed(self.blocks[node].succs):
                if succ not in seen:
                    stack.append((succ, False))
        order.reverse()
        return order

    def unreachable_pcs(self) -> List[int]:
        """Body pcs that no execution can reach (dead code)."""
        live = self.reachable()
        dead: List[int] = []
        for block in self.blocks[:-1]:
            if block.index not in live:
                dead.extend(block.pcs())
        return dead


# ---------------------------------------------------------------------------
# Label resolution
# ---------------------------------------------------------------------------


def _resolve_targets(body: Sequence[Instr]) -> Dict[int, List]:
    """Map every control-transferring pc to its flat targets.

    Targets of branches to still-open ``block``/``if`` frames are patched
    when the matching ``end`` is seen, mirroring the interpreter's
    side-table construction.
    """
    n = len(body)
    targets: Dict[int, List] = {}
    # frame: [opcode, start_pc, else_pc, patches]; patches = [(pc, slot)].
    ctrl: List[List] = [[0, -1, -1, []]]

    def label_target(depth: int, pc: int, slot: int) -> int:
        if depth >= len(ctrl):
            raise CFGError(f"branch depth {depth} out of range at pc {pc}")
        frame = ctrl[len(ctrl) - 1 - depth]
        if frame[1] < 0:            # function frame: branch == return
            return n
        if frame[0] == op.LOOP:
            return frame[1]
        frame[3].append((pc, slot))
        return -1

    for pc, ins in enumerate(body):
        o = ins[0]
        if o in (op.BLOCK, op.LOOP, op.IF):
            ctrl.append([o, pc, -1, []])
            if o == op.IF:
                targets[pc] = [_IF, -1]   # false target patched below
        elif o == op.ELSE:
            if len(ctrl) < 2 or ctrl[-1][0] != op.IF:
                raise CFGError(f"else without if at pc {pc}")
            ctrl[-1][2] = pc
            targets[pc] = [_JUMP, -1]     # jump over the else arm
        elif o == op.END:
            if len(ctrl) < 2:
                raise CFGError(f"end without matching block at pc {pc}")
            frame = ctrl.pop()
            fo, start_pc, else_pc, patches = frame
            after = pc + 1
            if fo == op.IF:
                if else_pc >= 0:
                    targets[start_pc][1] = else_pc + 1
                    targets[else_pc][1] = after
                else:
                    targets[start_pc][1] = after
            for patch_pc, slot in patches:
                targets[patch_pc][slot] = after
        elif o == op.BR:
            targets[pc] = [_JUMP, label_target(ins[1], pc, 1)]
        elif o == op.BR_IF:
            targets[pc] = [_BRANCH, label_target(ins[1], pc, 1)]
        elif o == op.BR_TABLE:
            labels, default = ins[1], ins[2]
            entry: List = [_TABLE] + [-1] * (len(labels) + 1)
            targets[pc] = entry
            for slot, depth in enumerate(list(labels) + [default], start=1):
                entry[slot] = label_target(depth, pc, slot)
        elif o in (op.RETURN, op.UNREACHABLE):
            targets[pc] = [_EXIT]
    if len(ctrl) != 1:
        raise CFGError("unbalanced control frames at end of body")
    return targets


# ---------------------------------------------------------------------------
# Block construction
# ---------------------------------------------------------------------------


def build_cfg(func: Function,
              module: Optional[Module] = None) -> ControlFlowGraph:
    """Build the basic-block CFG of ``func``'s body.

    ``module`` is accepted for signature symmetry with the client
    analyses; the graph itself only needs the body.
    """
    body = func.body
    n = len(body)
    targets = _resolve_targets(body)

    leaders: Set[int] = {0}
    for pc, entry in targets.items():
        if pc + 1 <= n:
            leaders.add(pc + 1)
        if entry[0] != _EXIT:
            for tgt in entry[1:]:
                if tgt < n:
                    leaders.add(tgt)
    for pc, ins in enumerate(body):
        if ins[0] == op.LOOP:
            leaders.add(pc)          # stable loop headers even if never br'd

    starts = sorted(pc for pc in leaders if pc < n)
    blocks: List[BasicBlock] = []
    block_of: List[int] = [0] * n
    for i, start in enumerate(starts):
        end = starts[i + 1] if i + 1 < len(starts) else n
        blocks.append(BasicBlock(index=i, start=start, end=end))
        for pc in range(start, end):
            block_of[pc] = i
    exit_index = len(blocks)
    blocks.append(BasicBlock(index=exit_index, start=n, end=n))

    def at(pc: int) -> int:
        return exit_index if pc >= n else block_of[pc]

    for block in blocks[:-1]:
        last = block.end - 1
        entry = targets.get(last)
        kind = entry[0] if entry else None
        if kind == _JUMP:
            block.succs = [at(entry[1])]
        elif kind == _BRANCH:
            taken, fall = at(entry[1]), at(block.end)
            block.succs = [taken, fall]
            block.true_succ, block.false_succ = taken, fall
        elif kind == _IF:
            then, other = at(block.end), at(entry[1])
            block.succs = [then, other]
            block.true_succ, block.false_succ = then, other
        elif kind == _TABLE:
            seen: Set[int] = set()
            for tgt in entry[1:]:
                bi = at(tgt)
                if bi not in seen:
                    seen.add(bi)
                    block.succs.append(bi)
        elif kind == _EXIT:
            block.succs = [exit_index]
        else:
            block.succs = [at(block.end)]
    for block in blocks:
        for succ in block.succs:
            blocks[succ].preds.append(block.index)
    return ControlFlowGraph(body, blocks, block_of, targets)
