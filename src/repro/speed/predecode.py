"""Predecode + superinstruction fusion for the interpreter fast path.

Translates a prepared function body once into ``fcode``: a list, indexed
by the *same* pc as the original body, of flat handler tuples
``(kind, cost, ...)`` with every per-instruction constant precomputed —
handler cost (dispatch + handler instructions), dispatch-site tag,
handler I-cache line, side-table jump targets, load/store codecs and
pre-masked immediates.  The hot loop then burns zero time on dict
lookups, opcode classification or side-table chasing.

**Fusion.**  The dominant sequences compiled MiniC emits are collapsed
into superinstructions stored at the head pc:

* ``local.get; local.get; binop``  (and ``local.get; const; binop``)
* those two followed by ``br_if`` when the binop is a comparison
* ``local.get; load``  (address from a local + constant offset)
* ``local.get; {local.get|const}; store``

Tail pcs *keep their ordinary single-op entries*, so a branch landing in
the middle of a fused group executes the original semantics — fusion
needs no leader analysis to be safe.  Comparison-only ``br_if`` fusion
keeps trap-time counter flushes exact: comparisons cannot trap, so the
fused group can never flush with the ``br_if``'s charge excluded.

**The model contract.**  Fused handlers perform the per-op model calls
(`indirect_branch`, L1I access, operand-stack refs) in exactly the
reference loop's order, so predictor state, the shared cache hierarchy
and every counter evolve identically; fusion only removes Python loop
overhead.  See PERFORMANCE.md.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional

from ..hw.config import RUNTIME_CODE_BASE
from ..isa import ops as mops
from ..isa import wasm_map
from ..wasm import opcodes as op

# Load/store codecs keyed by wasm opcode (same construction as the
# reference engine; duplicated here to keep the import graph acyclic).
_LOADC: Dict[int, tuple] = {}
for _wop, _mop in wasm_map.LOADS.items():
    _size, _fmt, _mask = mops.LOAD_CODEC[_mop]
    _LOADC[_wop] = (_size, struct.Struct("<" + _fmt).unpack_from, _mask)
_STOREC: Dict[int, tuple] = {}
for _wop, _mop in wasm_map.STORES.items():
    _size, _fmt, _mask = mops.STORE_CODEC[_mop]
    _STOREC[_wop] = (_size, struct.Struct("<" + _fmt).pack_into, _mask)

_BIN_FN = wasm_map.BIN_FN
_UN_FN = wasm_map.UN_FN

_CONSTS = frozenset((op.I32_CONST, op.I64_CONST, op.F32_CONST,
                     op.F64_CONST))

# Binary comparisons: the only binops eligible for br_if fusion (they
# cannot trap, keeping fused trap-flush accounting exact).
_COMPARES = frozenset(
    list(range(op.I32_EQ, op.I32_GE_U + 1)) +
    list(range(op.I64_EQ, op.I64_GE_U + 1)) +
    list(range(op.F32_EQ, op.F32_GE + 1)) +
    list(range(op.F64_EQ, op.F64_GE + 1)))

# ---------------------------------------------------------------------------
# fcode entry kinds.  Layouts (index: field) are documented next to each
# constant and destructured positionally by repro.speed.fastloop.
# ---------------------------------------------------------------------------

# Singles — all start (kind, cost, site, opcode, line, ...).
K_LOCAL_GET = 0       # 5: local index
K_CONST = 1           # 5: pre-masked value
K_BIN = 2             # 5: semantic fn
K_LOCAL_SET = 3       # 5: local index
K_LOCAL_TEE = 4       # 5: local index
K_UN = 5              # 5: semantic fn
K_LOAD = 6            # 5: size, 6: unpack, 7: mask, 8: offset
K_STORE = 7           # 5: size, 6: pack, 7: mask, 8: offset
K_BR_IF = 8           # 5: tgt, 6: arity, 7: height
K_BR = 9              # 5: tgt, 6: arity, 7: height
K_IF = 10             # 5: else/after target
K_ELSE = 11           # 5: after target
K_PASS = 12           # block/loop/end/nop
K_CALL = 13           # 5: callee func index
K_CALL_INDIRECT = 14  # 5: type index, 6: dispatch site | 0x8000_0000,
#                       7: inline cache {elem_index: callee_index}
K_GLOBAL_GET = 15     # 5: global index
K_GLOBAL_SET = 16     # 5: global index
K_DROP = 17
K_SELECT = 18
K_BR_TABLE = 19       # 5: entries tuple, 6: default
K_RETURN = 20
K_MEMORY_SIZE = 21
K_MEMORY_GROW = 22
K_UNREACHABLE = 23
K_BAD = 24            # validated modules never execute this

# Fused — (kind, total cost, then (site, opcode, line) per sub-op, ...).
F_LG_LG_BIN = 25        # 11: idx a, 12: idx b, 13: fn, 14: next pc
F_LG_CONST_BIN = 26     # 11: idx a, 12: value, 13: fn, 14: next pc
F_LG_LG_CMP_BRIF = 27   # 14: idx a, 15: idx b, 16: fn,
#                         17: tgt, 18: arity, 19: height, 20: next pc
F_LG_CONST_CMP_BRIF = 28  # 14: idx a, 15: value, rest as above
F_LG_LOAD = 29          # 8: idx, 9: size, 10: unpack, 11: mask,
#                         12: offset, 13: next pc
F_LG_LG_STORE = 30      # 11: idx a, 12: idx v, 13: size, 14: pack,
#                         15: mask, 16: offset, 17: next pc
F_LG_CONST_STORE = 31   # 11: idx a, 12: pre-masked value, 13: size,
#                         14: pack, 15: offset, 16: next pc


def _const_value(ins: tuple) -> object:
    """The value a const pushes, masked exactly as the reference loop."""
    o = ins[0]
    if o > op.I64_CONST:
        return ins[1]
    return ins[1] & (0xFFFFFFFF if o == op.I32_CONST
                     else 0xFFFFFFFFFFFFFFFF)


def predecode_functions(prepared: List, profile,
                        line_shift: int) -> Dict[int, list]:
    """Predecode every wasm function in a loader's prepared list."""
    hcost = profile.handler_costs()
    dispatch = profile.dispatch_cost
    hline = [(RUNTIME_CODE_BASE >> line_shift) + o * 2 for o in range(256)]
    out: Dict[int, list] = {}
    for entry in prepared:
        if entry is not None and entry[0] == "wasm":
            pf = entry[1]
            out[pf.index] = _predecode_body(pf, hcost, dispatch, hline)
    return out


def _predecode_body(pf, hcost: List[int], dispatch: int,
                    hline: List[int]) -> list:
    body = pf.body
    side = pf.side
    n = len(body)
    func_tag = (pf.index & 0x3FF) << 20

    # Pass 1: a single-op entry for every pc (branch targets stay valid).
    fcode: list = [None] * n
    for pc, ins in enumerate(body):
        o = ins[0]
        head = (hcost[o] + dispatch, func_tag | pc, o, hline[o])
        if o == op.LOCAL_GET:
            e = (K_LOCAL_GET,) + head + (ins[1],)
        elif o in _CONSTS:
            e = (K_CONST,) + head + (_const_value(ins),)
        elif o in _BIN_FN:
            e = (K_BIN,) + head + (_BIN_FN[o],)
        elif o == op.LOCAL_SET:
            e = (K_LOCAL_SET,) + head + (ins[1],)
        elif o == op.LOCAL_TEE:
            e = (K_LOCAL_TEE,) + head + (ins[1],)
        elif o in _UN_FN:
            e = (K_UN,) + head + (_UN_FN[o],)
        elif o in _LOADC:
            size, unpack, mask = _LOADC[o]
            e = (K_LOAD,) + head + (size, unpack, mask, ins[2])
        elif o in _STOREC:
            size, pack, mask = _STOREC[o]
            e = (K_STORE,) + head + (size, pack, mask, ins[2])
        elif o == op.BR_IF:
            tgt, arity, hgt = side[pc][1]
            e = (K_BR_IF,) + head + (tgt, arity, hgt)
        elif o == op.BR:
            tgt, arity, hgt = side[pc][1]
            e = (K_BR,) + head + (tgt, arity, hgt)
        elif o == op.IF:
            e = (K_IF,) + head + (side[pc][1],)
        elif o == op.ELSE:
            e = (K_ELSE,) + head + (side[pc][1],)
        elif o in (op.BLOCK, op.LOOP, op.END, op.NOP):
            e = (K_PASS,) + head
        elif o == op.CALL:
            e = (K_CALL,) + head + (ins[1],)
        elif o == op.CALL_INDIRECT:
            e = (K_CALL_INDIRECT,) + head + (
                ins[1], func_tag | pc | 0x8000_0000, {})
        elif o == op.GLOBAL_GET:
            e = (K_GLOBAL_GET,) + head + (ins[1],)
        elif o == op.GLOBAL_SET:
            e = (K_GLOBAL_SET,) + head + (ins[1],)
        elif o == op.DROP:
            e = (K_DROP,) + head
        elif o == op.SELECT:
            e = (K_SELECT,) + head
        elif o == op.BR_TABLE:
            _, entries, default = side[pc]
            e = (K_BR_TABLE,) + head + (tuple(entries), default)
        elif o == op.RETURN:
            e = (K_RETURN,) + head
        elif o == op.MEMORY_SIZE:
            e = (K_MEMORY_SIZE,) + head
        elif o == op.MEMORY_GROW:
            e = (K_MEMORY_GROW,) + head
        elif o == op.UNREACHABLE:
            e = (K_UNREACHABLE,) + head
        else:
            e = (K_BAD,) + head
        fcode[pc] = e

    # Pass 2: greedy left-to-right fusion overlay at group heads.
    pc = 0
    while pc < n:
        glen = _try_fuse(fcode, body, pc, n, hcost, dispatch, hline,
                         func_tag)
        pc += glen
    return fcode


def _model(pc: int, o: int, hline: List[int], func_tag: int) -> tuple:
    return (func_tag | pc, o, hline[o])


def _try_fuse(fcode: list, body: List[tuple], pc: int, n: int,
              hcost: List[int], dispatch: int, hline: List[int],
              func_tag: int) -> int:
    """Install a fused entry at ``pc`` if a pattern matches; return the
    number of pcs consumed (1 = no fusion)."""
    if body[pc][0] != op.LOCAL_GET or pc + 1 >= n:
        return 1
    i1 = body[pc]
    i2 = body[pc + 1]
    o2 = i2[0]

    def cost(*ops):
        return sum(hcost[o] + dispatch for o in ops)

    m1 = _model(pc, op.LOCAL_GET, hline, func_tag)

    # local.get; load
    if o2 in _LOADC:
        size, unpack, mask = _LOADC[o2]
        fcode[pc] = (F_LG_LOAD, cost(op.LOCAL_GET, o2)) + m1 + \
            _model(pc + 1, o2, hline, func_tag) + \
            (i1[1], size, unpack, mask, i2[2], pc + 2)
        return 2

    if pc + 2 >= n:
        return 1
    i3 = body[pc + 2]
    o3 = i3[0]
    second_lg = o2 == op.LOCAL_GET
    second_const = o2 in _CONSTS
    if not (second_lg or second_const):
        return 1
    m2 = _model(pc + 1, o2, hline, func_tag)
    m3 = _model(pc + 2, o3, hline, func_tag)
    operand = i2[1] if second_lg else _const_value(i2)

    # local.get; {local.get|const}; store
    if o3 in _STOREC:
        size, pack, mask = _STOREC[o3]
        if second_lg:
            fcode[pc] = (F_LG_LG_STORE, cost(op.LOCAL_GET, o2, o3)) + \
                m1 + m2 + m3 + (i1[1], operand, size, pack, mask, i3[2],
                                pc + 3)
        else:
            value = (operand & mask) if mask else operand
            fcode[pc] = (F_LG_CONST_STORE, cost(op.LOCAL_GET, o2, o3)) + \
                m1 + m2 + m3 + (i1[1], value, size, pack, i3[2], pc + 3)
        return 3

    if o3 not in _BIN_FN:
        return 1
    fn = _BIN_FN[o3]

    # local.get; {local.get|const}; compare; br_if
    if o3 in _COMPARES and pc + 3 < n and body[pc + 3][0] == op.BR_IF:
        brpc = pc + 3
        tgt, arity, hgt = fcode[brpc][5], fcode[brpc][6], fcode[brpc][7]
        m4 = _model(brpc, op.BR_IF, hline, func_tag)
        kind = F_LG_LG_CMP_BRIF if second_lg else F_LG_CONST_CMP_BRIF
        fcode[pc] = (kind, cost(op.LOCAL_GET, o2, o3, op.BR_IF)) + \
            m1 + m2 + m3 + m4 + (i1[1], operand, fn, tgt, arity, hgt,
                                 pc + 4)
        return 4

    # local.get; {local.get|const}; binop
    kind = F_LG_LG_BIN if second_lg else F_LG_CONST_BIN
    fcode[pc] = (kind, cost(op.LOCAL_GET, o2, o3)) + m1 + m2 + m3 + \
        (i1[1], operand, fn, pc + 3)
    return 3
