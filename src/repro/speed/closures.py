"""Closure compilation: one ``exec``-compiled Python function per Wasm
function — a template JIT *of the model itself*.

:mod:`repro.speed.fastloop` already removed dict lookups and side-table
chasing from the interpreter hot loop, but it still pays one trip
through a kind-dispatch chain per fcode entry and a tuple load per
operand.  This module goes one tier further: it walks a function's
fcode once and emits specialized Python *source* — every opcode's
semantics, its modeled charges, the branch-predictor and L1I fast
paths, and every per-instruction constant inlined as a literal — then
``exec``-compiles that source into a closure the interpreter calls
instead of any dispatch loop.

**Byte-identity.**  The generated code performs exactly the model
updates of :func:`repro.speed.fastloop.fast_run`, in the same order,
with the same shadowed frame state (pending ``instr``/``stall``/
``br``/``ldr`` counts, the predictor target history, the L1I tick)
written back at every observation point: before guest/host calls,
before every trap, and at frame exit.  Slow paths (predictor update,
L1I miss, trap-time flush) go through per-frame helper closures so the
generated source stays compact; the helpers are verbatim transcriptions
of the fastloop slow paths.  tests/test_closures.py holds the
differential harness that enforces all of this.

**Control flow.**  Structured Wasm control flow was already flattened
to pc-level jumps by the prepare pass, so the generator lowers each
function to a *block trampoline*: basic blocks (split at every branch
target and after every branch) laid out in an ``if _b == k`` chain
inside ``while True``, with jumps compiled to ``_b = <block>``.
``br_table`` dispatches through an inlined pc-to-block literal dict.
A branch target inside a fused group starts its own block from the
group's preserved single-op tail entries, exactly like a fastloop
branch landing mid-group.

**Persistence.**  :func:`compile_bundle` returns pickle-friendly
``(source, const descriptors)`` pairs — semantic callables, codec
methods and inline-cache dicts are referenced by name in the source and
rebuilt from small descriptor tuples by :func:`bind_bundle` — so the
whole bundle persists through the artifact store (see
:meth:`repro.speed.modcache.ModuleCache.closure_code`) and ``--jobs``
pool workers share one compilation instead of re-deriving it.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from ..errors import ReproError, Trap
from ..isa import wasm_map
from ..wasm import opcodes as op
from .predecode import (
    _LOADC, _STOREC, F_LG_CONST_BIN, F_LG_CONST_CMP_BRIF,
    F_LG_CONST_STORE, F_LG_LG_BIN, F_LG_LG_CMP_BRIF, F_LG_LG_STORE,
    F_LG_LOAD, K_BAD, K_BIN, K_BR, K_BR_IF, K_BR_TABLE, K_CALL,
    K_CALL_INDIRECT, K_CONST, K_DROP, K_ELSE, K_GLOBAL_GET,
    K_GLOBAL_SET, K_IF, K_LOAD, K_LOCAL_GET, K_LOCAL_SET, K_LOCAL_TEE,
    K_MEMORY_GROW, K_MEMORY_SIZE, K_PASS, K_RETURN, K_SELECT, K_STORE,
    K_UN, K_UNREACHABLE, predecode_functions)

#: A bundle: {func_index: (source text, [(name, descriptor), ...])}.
Bundle = Dict[int, Tuple[str, List[Tuple[str, tuple]]]]

#: fcode kinds that end a basic block.
_TERMINATORS = frozenset((
    K_BR_IF, K_BR, K_IF, K_ELSE, K_BR_TABLE, K_RETURN, K_UNREACHABLE,
    K_BAD, F_LG_LG_CMP_BRIF, F_LG_CONST_CMP_BRIF))

#: Index of the sequential-next-pc field per fused (non-branch) kind.
_FUSED_NEXT = {F_LG_LG_BIN: 14, F_LG_CONST_BIN: 14, F_LG_LOAD: 13,
               F_LG_LG_STORE: 17, F_LG_CONST_STORE: 16}

_FLUSH = "_flush(instr, stall, br, ldr, l1i_refs, th, l1i_tick)"


class _Consts:
    """Named constants the generated source references by ``G<n>``.

    Each constant is recorded as a small picklable descriptor and
    rebuilt at bind time by :func:`_resolve` — the bundle itself never
    holds a callable or a bound method.
    """

    def __init__(self):
        self._dedup: Dict[tuple, str] = {}
        self.items: List[Tuple[str, tuple]] = []

    def ref(self, descr: tuple, dedup: bool = True) -> str:
        if dedup:
            name = self._dedup.get(descr)
            if name is not None:
                return name
        name = f"G{len(self.items)}"
        self.items.append((name, descr))
        if dedup:
            self._dedup[descr] = name
        return name


def _resolve(descr: tuple):
    """Rebuild one generated-source constant from its descriptor."""
    kind = descr[0]
    if kind == "bin":
        return wasm_map.BIN_FN[descr[1]]
    if kind == "un":
        return wasm_map.UN_FN[descr[1]]
    if kind == "load":
        return _LOADC[descr[1]][1]
    if kind == "store":
        return _STOREC[descr[1]][1]
    if kind == "ic":
        # A fresh call_indirect inline cache per binding; sound for the
        # same reason as the fastloop ICs (the cached value is the
        # resolved function *index*, and a module's funcref table is
        # rebuilt identically on every instantiation).
        return {}
    if kind == "obj":
        return descr[1]
    raise ReproError(f"closure bundle: unknown descriptor {descr!r}")


def _lit(value, consts: _Consts) -> str:
    """A source literal for ``value``, or a named constant when repr
    would not round-trip (non-finite floats)."""
    if isinstance(value, bool):
        return repr(value)
    if isinstance(value, int):
        return repr(value)
    if isinstance(value, float):
        if math.isfinite(value):
            return repr(value)
        return consts.ref(("obj", value))
    return consts.ref(("obj", value))


# ---------------------------------------------------------------------------
# Source generation
# ---------------------------------------------------------------------------


def compile_bundle(prepared: List, profile, line_shift: int) -> Bundle:
    """Generate a persistable closure bundle for every wasm function."""
    fcode_map = predecode_functions(prepared, profile, line_shift)
    bundle: Bundle = {}
    for entry in prepared:
        if entry is not None and entry[0] == "wasm":
            pf = entry[1]
            bundle[pf.index] = _gen_function(pf, fcode_map[pf.index],
                                             line_shift)
    return bundle


def bind_bundle(bundle: Bundle) -> Dict[int, object]:
    """Exec-compile a bundle into per-function callables."""
    code: Dict[int, object] = {}
    for index, (source, descrs) in bundle.items():
        namespace = {"Trap": Trap, "ReproError": ReproError}
        for name, descr in descrs:
            namespace[name] = _resolve(descr)
        exec(compile(source, f"<speed-closure f{index}>", "exec"),
             namespace)
        code[index] = namespace[f"_c{index}"]
    return code


def _collect_labels(fcode: list, n: int) -> List[int]:
    """Basic-block leaders: entry, every branch target, and the
    fall-through successor of every conditional branch."""
    labels = {0}
    for pc, e in enumerate(fcode):
        k = e[0]
        if k == K_BR_IF:
            labels.add(e[5])
            labels.add(pc + 1)
        elif k == K_BR or k == K_ELSE:
            labels.add(e[5])
        elif k == K_IF:
            labels.add(e[5])
            labels.add(pc + 1)
        elif k == K_BR_TABLE:
            for tgt, _arity, _hgt in e[5]:
                labels.add(tgt)
            labels.add(e[6][0])
        elif k == F_LG_LG_CMP_BRIF or k == F_LG_CONST_CMP_BRIF:
            labels.add(e[17])
            labels.add(e[20])
    return sorted(label for label in labels if 0 <= label < n)


class _Emitter:
    """Accumulates indented source lines."""

    def __init__(self):
        self.lines: List[str] = []

    def emit(self, indent: int, *lines: str) -> None:
        pad = "    " * indent
        for line in lines:
            self.lines.append(pad + line)


def _gen_function(pf, fcode: list,
                  line_shift: int) -> Tuple[str, List[Tuple[str, tuple]]]:
    n = len(fcode)
    consts = _Consts()
    out = _Emitter()
    guest_line_base = 0x1000_0000 >> line_shift
    load_trap = repr(pf.name + ": load at %d") + " % addr"
    store_trap = repr(pf.name + ": store at %d") + " % addr"

    labels = _collect_labels(fcode, n)
    block_of = {label: i for i, label in enumerate(labels)}

    # Loop-invariant hoisting: every predictor site index (``site &
    # imask``) and every L1I set dict (``l1i_sets[line & smask]``) is a
    # pure function of a compile-time literal and a per-interpreter
    # constant, so both are computed once in the prelude and named
    # ``S<n>`` / ``C<n>``.  The set dicts are stable objects — a
    # :class:`~repro.hw.cache.Cache` never replaces a set in place (only
    # mutates it), and pre-touching a defaultdict set is unobservable
    # (empty sets count zero occupancy and fail membership tests).
    sites: Dict[int, str] = {}
    cache_sets: Dict[int, str] = {}

    def site_name(site: int) -> str:
        name = sites.get(site)
        if name is None:
            name = f"S{len(sites)}"
            sites[site] = name
        return name

    def set_name(line: int) -> str:
        name = cache_sets.get(line)
        if name is None:
            name = f"C{len(cache_sets)}"
            cache_sets[line] = name
        return name

    def goto(target: int) -> str:
        # ``break`` leaves the trampoline straight into the epilogue —
        # exactly the fastloop's ``pc = len(body)`` exit.
        if target >= n:
            return "break"
        return f"_b = {block_of[target]}"

    # -- model-update emitters (mirroring fast_run line for line) -------

    def emit_pred(ind: int, site: int, target) -> None:
        # ``target`` is an int literal for static sites, or the name of
        # a local holding the runtime target (br_table).
        t = target if isinstance(target, str) else repr(target)
        si = site_name(site)
        out.emit(ind,
                 "hi = th & imask",
                 "br += 1",
                 f"if btb_get({si}) == {t} and itc_get(hi) == {t}:",
                 f"    th = ((th << 4) ^ {t}) & imask",
                 "else:",
                 f"    th, stall = _bp({si}, hi, {t}, th, stall)")

    def emit_l1i(ind: int, line: int) -> None:
        cs = set_name(line)
        out.emit(ind,
                 f"if {line} in {cs}:",
                 "    l1i_tick += 1",
                 "    l1i_refs += 1",
                 f"    {cs}[{line}] = l1i_tick",
                 "else:",
                 f"    l1i_tick, l1i_refs, stall = "
                 f"_l1i({line}, l1i_tick, l1i_refs, stall)")

    def emit_head(ind: int, e: tuple) -> None:
        out.emit(ind, f"instr += {e[1]}")
        emit_pred(ind, e[2], e[3])
        out.emit(ind, "ldr += 2")
        emit_l1i(ind, e[4])

    def emit_unwind(ind: int, arity: int, height: int) -> None:
        if arity:
            out.emit(ind,
                     f"vals = stack[-{arity}:]",
                     f"del stack[{height}:]",
                     "stack.extend(vals)")
        else:
            out.emit(ind, f"del stack[{height}:]")

    def emit_trap_guard(ind: int, size: int, msg: str) -> None:
        out.emit(ind,
                 f"if addr + {size} > mem.size:",
                 f"    {_FLUSH}",
                 f"    raise Trap('out of bounds memory access', {msg})")

    def emit_sem_try(ind: int, expr: str) -> None:
        out.emit(ind,
                 "try:",
                 f"    {expr}",
                 "except Trap:",
                 f"    {_FLUSH}",
                 "    raise")

    def emit_call_flush(ind: int) -> None:
        out.emit(ind, _FLUSH,
                 "instr = 0", "stall = 0", "br = 0", "ldr = 0",
                 "l1i_refs = 0")

    def emit_call_resume(ind: int) -> None:
        out.emit(ind,
                 "th = branches._target_history",
                 "l1i_tick = l1i.tick",
                 "if result is not None:",
                 "    push(result)")

    # -- one fcode entry --------------------------------------------------

    def emit_entry(ind: int, pc: int, e: tuple) -> int:
        """Emit entry ``e`` at ``pc``; return the next pc, or -1 when
        the entry terminated the block."""
        k = e[0]
        emit_head(ind, e)
        if k == K_LOCAL_GET:
            out.emit(ind, f"push(L{e[5]})")
        elif k == K_CONST:
            out.emit(ind, f"push({_lit(e[5], consts)})")
        elif k == K_BIN:
            fn = consts.ref(("bin", e[3]))
            out.emit(ind, "b = pop()", "a = pop()")
            emit_sem_try(ind, f"push({fn}(a, b))")
        elif k == K_LOCAL_SET:
            out.emit(ind, f"L{e[5]} = pop()")
        elif k == K_LOCAL_TEE:
            out.emit(ind, f"L{e[5]} = stack[-1]")
        elif k == K_UN:
            fn = consts.ref(("un", e[3]))
            emit_sem_try(ind, f"stack[-1] = {fn}(stack[-1])")
        elif k == K_LOAD:
            unpack = consts.ref(("load", e[3]))
            out.emit(ind, f"addr = pop() + {e[8]}")
            emit_trap_guard(ind, e[5], load_trap)
            out.emit(ind, f"value = {unpack}(mem.data, addr)[0]")
            out.emit(ind, f"push(value & {e[7]})" if e[7]
                     else "push(value)")
            out.emit(ind, f"stall += l1d_access({guest_line_base} + "
                          f"(addr >> {line_shift}))")
        elif k == K_STORE:
            pack = consts.ref(("store", e[3]))
            out.emit(ind, "value = pop()", f"addr = pop() + {e[8]}")
            emit_trap_guard(ind, e[5], store_trap)
            out.emit(ind,
                     f"{pack}(mem.data, addr, value & {e[7]})" if e[7]
                     else f"{pack}(mem.data, addr, value)",
                     "mem.touched.add(addr >> 12)",
                     f"stall += l1d_access({guest_line_base} + "
                     f"(addr >> {line_shift}))")
        elif k == K_BR_IF:
            out.emit(ind, "cond = pop()",
                     f"cond_branch({e[2]}, bool(cond))",
                     "if cond:")
            emit_unwind(ind + 1, e[6], e[7])
            out.emit(ind + 1, goto(e[5]))
            out.emit(ind, "else:")
            out.emit(ind + 1, goto(pc + 1))
            return -1
        elif k == K_BR:
            emit_unwind(ind, e[6], e[7])
            out.emit(ind, goto(e[5]))
            return -1
        elif k == K_IF:
            out.emit(ind, "cond = pop()",
                     f"cond_branch({e[2]}, not cond)",
                     "if cond:")
            out.emit(ind + 1, goto(pc + 1))
            out.emit(ind, "else:")
            out.emit(ind + 1, goto(e[5]))
            return -1
        elif k == K_ELSE:
            out.emit(ind, goto(e[5]))
            return -1
        elif k == K_PASS:
            pass
        elif k == K_CALL:
            emit_call_flush(ind)
            out.emit(ind,
                     f"callee = functions[{e[5]}]",
                     f"br_call({e[2]})",
                     "if callee[0] == 'host':",
                     "    n_args = callee[2]",
                     "    call_args = stack[len(stack) - n_args:] "
                     "if n_args else []",
                     "    del stack[len(stack) - n_args:]",
                     "    result = callee[1](mem, *call_args)",
                     "else:",
                     "    prepared = callee[1]",
                     "    n_args = prepared.params",
                     "    call_args = stack[len(stack) - n_args:] "
                     "if n_args else []",
                     "    del stack[len(stack) - n_args:]",
                     "    result = exec_(prepared, call_args)",
                     f"br_ret({e[2]})")
            emit_call_resume(ind)
        elif k == K_CALL_INDIRECT:
            ic = consts.ref(("ic",), dedup=False)
            emit_call_flush(ind)
            out.emit(ind,
                     "elem_index = pop()",
                     f"callee_index = {ic}.get(elem_index)",
                     "if callee_index is None:",
                     "    if not 0 <= elem_index < len(table):",
                     "        raise Trap('undefined element')",
                     "    callee_index = table[elem_index]",
                     "    if callee_index < 0:",
                     "        raise Trap('uninitialized element')",
                     "    callee = functions[callee_index]",
                     f"    if I._sig_of_type_index({e[5]}) != "
                     "I._sig_of_callee(callee):",
                     "        raise Trap('indirect call type mismatch')",
                     f"    {ic}[elem_index] = callee_index",
                     "else:",
                     "    callee = functions[callee_index]",
                     f"indirect({e[6]}, callee_index)",
                     "if callee[0] == 'host':",
                     "    n_args = callee[2]",
                     "else:",
                     "    n_args = callee[1].params",
                     "call_args = stack[len(stack) - n_args:] "
                     "if n_args else []",
                     "del stack[len(stack) - n_args:]",
                     f"br_call({e[2]})",
                     "if callee[0] == 'host':",
                     "    result = callee[1](mem, *call_args)",
                     "else:",
                     "    result = exec_(callee[1], call_args)",
                     f"br_ret({e[2]})")
            emit_call_resume(ind)
        elif k == K_GLOBAL_GET:
            out.emit(ind, f"push(globals_[{e[5]}])", "ldr += 1")
        elif k == K_GLOBAL_SET:
            out.emit(ind, f"globals_[{e[5]}] = pop()", "ldr += 1")
        elif k == K_DROP:
            out.emit(ind, "pop()")
        elif k == K_SELECT:
            out.emit(ind, "c = pop()", "b = pop()", "a = pop()",
                     "push(a if c else b)")
        elif k == K_BR_TABLE:
            entries = tuple((tgt, arity, hgt) for tgt, arity, hgt in e[5])
            jump = {tgt: block_of.get(tgt, -1)
                    for tgt in sorted({t[0] for t in entries} |
                                      {e[6][0]})}
            out.emit(ind,
                     "index = pop()",
                     f"target = {entries!r}[index] if index < "
                     f"{len(entries)} else {e[6]!r}",
                     "t = target[0]")
            emit_pred(ind, e[2], "t")
            out.emit(ind,
                     "tgt, arity, hgt = target",
                     "if arity:",
                     "    vals = stack[-arity:]",
                     "    del stack[hgt:]",
                     "    stack.extend(vals)",
                     "else:",
                     "    del stack[hgt:]",
                     f"_b = {jump!r}[tgt]")
            return -1
        elif k == K_RETURN:
            out.emit(ind, "break")
            return -1
        elif k == K_MEMORY_SIZE:
            out.emit(ind, "push(mem.pages)")
        elif k == K_MEMORY_GROW:
            out.emit(ind, "counters.instructions += 200",
                     "push(mem.grow(pop()) & 0xFFFFFFFF)")
        elif k == K_UNREACHABLE:
            out.emit(ind, _FLUSH, "raise Trap('unreachable')")
            return -1
        elif k == K_BAD:
            # The reference loses pending instr/stall on this internal
            # error; only the shadowed predictor/cache state is synced.
            msg = "interpreter: unhandled opcode " + op.name_of(e[3])
            out.emit(ind,
                     "counters.branches += br",
                     "l1d.refs += ldr",
                     "l1i_stats.refs += l1i_refs",
                     "branches._target_history = th",
                     "l1i.tick = l1i_tick",
                     f"raise ReproError({msg!r})")
            return -1
        elif k == F_LG_LG_BIN or k == F_LG_CONST_BIN:
            fn = consts.ref(("bin", e[9]))
            out.emit(ind, "ldr += 4")
            emit_l1i(ind, e[7])
            emit_pred(ind, e[5], e[6])
            emit_pred(ind, e[8], e[9])
            emit_l1i(ind, e[10])
            rhs = f"L{e[12]}" if k == F_LG_LG_BIN else _lit(e[12], consts)
            emit_sem_try(ind, f"push({fn}(L{e[11]}, {rhs}))")
            return e[14]
        elif k == F_LG_LOAD:
            unpack = consts.ref(("load", e[6]))
            out.emit(ind, "ldr += 2")
            emit_pred(ind, e[5], e[6])
            emit_l1i(ind, e[7])
            out.emit(ind, f"addr = L{e[8]} + {e[12]}")
            emit_trap_guard(ind, e[9], load_trap)
            out.emit(ind, f"value = {unpack}(mem.data, addr)[0]")
            out.emit(ind, f"push(value & {e[11]})" if e[11]
                     else "push(value)")
            out.emit(ind, f"stall += l1d_access({guest_line_base} + "
                          f"(addr >> {line_shift}))")
            return e[13]
        elif k == F_LG_LG_STORE or k == F_LG_CONST_STORE:
            pack = consts.ref(("store", e[9]))
            out.emit(ind, "ldr += 4")
            emit_l1i(ind, e[7])
            emit_pred(ind, e[5], e[6])
            emit_pred(ind, e[8], e[9])
            emit_l1i(ind, e[10])
            if k == F_LG_LG_STORE:
                out.emit(ind,
                         f"value = L{e[12]} & {e[15]}" if e[15]
                         else f"value = L{e[12]}",
                         f"addr = L{e[11]} + {e[16]}")
                size, nxt = e[13], e[17]
            else:
                out.emit(ind,
                         f"value = {_lit(e[12], consts)}",
                         f"addr = L{e[11]} + {e[15]}")
                size, nxt = e[13], e[16]
            emit_trap_guard(ind, size, store_trap)
            out.emit(ind,
                     f"{pack}(mem.data, addr, value)",
                     "mem.touched.add(addr >> 12)",
                     f"stall += l1d_access({guest_line_base} + "
                     f"(addr >> {line_shift}))")
            return nxt
        elif k == F_LG_LG_CMP_BRIF or k == F_LG_CONST_CMP_BRIF:
            fn = consts.ref(("bin", e[9]))
            out.emit(ind, "ldr += 6")
            emit_l1i(ind, e[7])
            emit_pred(ind, e[5], e[6])
            emit_pred(ind, e[8], e[9])
            emit_l1i(ind, e[10])
            emit_pred(ind, e[11], e[12])
            emit_l1i(ind, e[13])
            rhs = f"L{e[15]}" if k == F_LG_LG_CMP_BRIF \
                else _lit(e[15], consts)
            out.emit(ind,
                     f"cond = {fn}(L{e[14]}, {rhs})",
                     f"cond_branch({e[11]}, bool(cond))",
                     "if cond:")
            emit_unwind(ind + 1, e[18], e[19])
            out.emit(ind + 1, goto(e[17]))
            out.emit(ind, "else:")
            out.emit(ind + 1, goto(e[20]))
            return -1
        else:  # pragma: no cover - exhaustive over the kind set
            raise ReproError(f"closure codegen: unhandled kind {k}")
        return pc + 1

    # -- the block trampoline ----------------------------------------------
    # Generated *before* the prelude so the site/set hoist tables are
    # complete when the prelude's S/C assignments are written out.

    if n:
        out.emit(1, "_b = 0", "while True:")
        for bi, label in enumerate(labels):
            out.emit(2, ("if" if bi == 0 else "elif") + f" _b == {bi}:")
            pc = label
            while True:
                if pc >= n:
                    out.emit(3, "break")
                    break
                if pc != label and pc in block_of:
                    out.emit(3, goto(pc))
                    break
                pc = emit_entry(3, pc, fcode[pc])
                if pc < 0:
                    break
        out.emit(2, "else:", "    break")

    # -- epilogue ----------------------------------------------------------

    out.emit(1,
             "counters.instructions += instr",
             "counters.stall_cycles += stall",
             "counters.branches += br",
             "l1d.refs += ldr",
             "l1i_stats.refs += l1i_refs",
             "branches._target_history = th",
             "l1i.tick = l1i_tick")
    if pf.results:
        out.emit(1, "return stack[-1] if stack else 0")
    else:
        out.emit(1, "return None")

    # -- function prelude -------------------------------------------------

    head = _Emitter()
    head.emit(0, f"def _c{pf.index}(I, args):")
    for i, t in enumerate(pf.local_types):
        if i < pf.params:
            head.emit(1, f"L{i} = args[{i}]")
        elif t in (0x7D, 0x7C):
            head.emit(1, f"L{i} = 0.0")
        else:
            head.emit(1, f"L{i} = 0")
    head.emit(1,
             "stack = []",
             "push = stack.append",
             "pop = stack.pop",
             "cpu = I.cpu",
             "counters = cpu.counters",
             "branches = cpu.branches",
             "cond_branch = branches.cond_branch",
             "br_call = branches.call",
             "br_ret = branches.ret",
             "indirect = branches.indirect_branch",
             "penalty = branches.penalty",
             "l1d = counters.l1d",
             "l1i = cpu.caches.l1i",
             "l1i_access = l1i.access_line",
             "l1d_access = cpu.caches.l1d.access_line",
             "mem = I.memory",
             "globals_ = I.globals",
             "functions = I.functions",
             "table = I.table",
             "exec_ = I._exec",
             "imask = branches._itc_mask",
             "btb = branches._btb",
             "btb_get = btb.get",
             "itc = branches._itc",
             "itc_get = itc.get",
             "metad = branches._meta",
             "th = branches._target_history",
             "l1i_sets = l1i.sets",
             "l1i_smask = l1i.set_mask",
             "l1i_stats = l1i.stats",
             "l1i_tick = l1i.tick",
             "instr = 0",
             "stall = 0",
             "br = 0",
             "ldr = 0",
             "l1i_refs = 0",
             # Slow paths, transcribed verbatim from fastloop so the
             # model state evolves identically.
             "def _bp(si, hi, t, th, stall):",
             "    sp = btb.get(si)",
             "    hp = itc.get(hi)",
             "    meta = metad.get(si, 1)",
             "    predicted = hp if meta >= 2 else sp",
             "    if hp == t:",
             "        if sp != t and meta < 3:",
             "            metad[si] = meta + 1",
             "    elif sp == t and meta > 0:",
             "        metad[si] = meta - 1",
             "    btb[si] = t",
             "    itc[hi] = t",
             "    th = ((th << 4) ^ t) & imask",
             "    if predicted != t:",
             "        counters.branch_misses += 1",
             "        stall += penalty",
             "    return th, stall",
             "def _l1i(ln, tick, refs, stall):",
             "    l1i.tick = tick",
             "    l1i_stats.refs += refs",
             "    stall += l1i_access(ln)",
             "    return l1i.tick, 0, stall",
             "def _flush(i, s, b, d, r, t, k):",
             "    counters.instructions += i",
             "    counters.stall_cycles += s",
             "    counters.branches += b",
             "    l1d.refs += d",
             "    l1i_stats.refs += r",
             "    branches._target_history = t",
             "    l1i.tick = k")
    for site, name in sites.items():
        head.emit(1, f"{name} = {site} & imask")
    for line, name in cache_sets.items():
        head.emit(1, f"{name} = l1i_sets[{line} & l1i_smask]")

    return "\n".join(head.lines + out.lines) + "\n", consts.items
