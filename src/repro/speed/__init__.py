"""repro.speed — the fast-path execution layer.

Everything in this package is about *wall clock*, never about the model:
the modeled counters, traps, stdout and trace files produced with the
speed layer enabled are byte-identical to the reference implementation
(tests/test_speed.py and tests/test_closures.py enforce this;
PERFORMANCE.md documents the contract).  Four techniques:

* **predecode + fuse** (:mod:`repro.speed.predecode`) — translate a
  validated function body once into a flat tuple-of-handlers form, with
  superinstruction fusion for the dominant sequences, mirroring the
  locality discipline of ``repro.isa.machine``.
* **closure compilation** (:mod:`repro.speed.closures`) — compile each
  function's fcode into one ``exec``-compiled Python closure: a
  template JIT *of the model itself* that specializes opcode dispatch
  away entirely.
* **decoded-module caching** (:mod:`repro.speed.modcache`) — decoded,
  validated and prepared module forms (and generated closure source)
  are shared across engines and runs in-process, and persisted through
  the content-addressed artifact cache keyed by module hash +
  :data:`SPEED_VERSION` so ``--jobs`` pool workers share them too.
* **inline caches** for ``call_indirect`` plus per-frame local binding
  in the interpreter hot loop (:mod:`repro.speed.fastloop`).

The layer is tiered via ``REPRO_SPEED`` (or :func:`set_tier`):

=====  ==========================================================
tier   meaning
=====  ==========================================================
``0``  reference implementations only (the escape hatch)
``1``  predecoded fastloop + module cache
``2``  closure-compiled functions (default; includes tier 1)
=====  ==========================================================

Any other value is rejected with a one-line :class:`HarnessError` the
first time the layer is consulted — a typo must never silently pick a
tier.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Optional

from ..errors import HarnessError

#: Version of the predecoded/closure-compiled forms; part of every
#: disk-cache key so a format change can never resurrect stale artifacts.
SPEED_VERSION = 2   # 2: DecodeStats gained the non_minimal offsets field

#: The tiers `REPRO_SPEED` accepts (see module docstring).
TIERS = (0, 1, 2)
_DEFAULT_TIER = 2

# Parsed lazily: a bad env var raises HarnessError at first *use* (the
# CLI turns that into a one-line exit 1), not at import.
_tier: Optional[int] = None


def tier() -> int:
    """The active speed tier (0 reference / 1 fastloop / 2 closures)."""
    global _tier
    if _tier is None:
        raw = os.environ.get("REPRO_SPEED", str(_DEFAULT_TIER))
        if raw not in ("0", "1", "2"):
            raise HarnessError(
                f"REPRO_SPEED must be 0 (reference), 1 (fastloop) or "
                f"2 (closures); got {raw!r}")
        _tier = int(raw)
    return _tier


def set_tier(value: int) -> None:
    """Select the speed tier at runtime (CLI ``--speed-tier``, tests)."""
    global _tier
    if value not in TIERS:
        raise HarnessError(
            f"speed tier must be 0 (reference), 1 (fastloop) or "
            f"2 (closures); got {value!r}")
    _tier = value


def enabled() -> bool:
    """Is any fast path active? (tier >= 1; ``REPRO_SPEED=0`` turns it
    off.)"""
    return tier() >= 1


def set_enabled(value: bool) -> None:
    """Back-compat toggle: True selects the default (closure) tier,
    False the reference tier."""
    set_tier(_DEFAULT_TIER if value else 0)


from .modcache import ModuleCache, ModuleEntry  # noqa: E402

#: Process-wide decoded-module cache.  Harness instances attach/detach
#: the persistent artifact-cache layer; everything else just reads.
module_cache = ModuleCache()


def entry_for(module) -> "ModuleEntry | None":
    """The cache entry owning ``module``, or None if uncached/disabled."""
    if not enabled():
        return None
    return module_cache.entry_for(module)


# ---------------------------------------------------------------------------
# Process-global compiled-wasm memo.
#
# scripts/bench_wall.py (and any caller that builds a fresh Harness per
# run) re-enters the MiniC front-end for every repeat even though the
# compiled bytes are a pure function of the artifact key.  Like the
# decoded-module cache above, this memo shares that pure work across
# Harness instances in one process; the modeled counters never include
# host-side compile time, so results are byte-identical either way.
# ---------------------------------------------------------------------------

_WASM_MEMO_CAPACITY = 256
_wasm_memo: "OrderedDict[str, bytes]" = OrderedDict()


def wasm_memo_get(key: str) -> Optional[bytes]:
    """Compiled wasm bytes for this artifact key, if seen this process."""
    if not enabled():
        return None
    payload = _wasm_memo.get(key)
    if payload is not None:
        _wasm_memo.move_to_end(key)
    return payload


def wasm_memo_put(key: str, wasm_bytes: bytes) -> None:
    if not enabled():
        return
    _wasm_memo[key] = wasm_bytes
    _wasm_memo.move_to_end(key)
    while len(_wasm_memo) > _WASM_MEMO_CAPACITY:
        _wasm_memo.popitem(last=False)


def wasm_memo_clear() -> None:
    _wasm_memo.clear()


__all__ = ["SPEED_VERSION", "TIERS", "tier", "set_tier", "enabled",
           "set_enabled", "module_cache", "entry_for", "ModuleCache",
           "ModuleEntry", "wasm_memo_get", "wasm_memo_put",
           "wasm_memo_clear"]
