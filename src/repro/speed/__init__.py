"""repro.speed — the fast-path execution layer.

Everything in this package is about *wall clock*, never about the model:
the modeled counters, traps, stdout and trace files produced with the
speed layer enabled are byte-identical to the reference implementation
(tests/test_speed.py enforces this; PERFORMANCE.md documents the
contract).  Three techniques:

* **predecode + fuse** (:mod:`repro.speed.predecode`) — translate a
  validated function body once into a flat tuple-of-handlers form, with
  superinstruction fusion for the dominant sequences, mirroring the
  locality discipline of ``repro.isa.machine``.
* **decoded-module caching** (:mod:`repro.speed.modcache`) — decoded,
  validated and prepared module forms are shared across engines and
  runs in-process, and persisted through the content-addressed artifact
  cache keyed by module hash + :data:`SPEED_VERSION`.
* **inline caches** for ``call_indirect`` plus per-frame local binding
  in the interpreter hot loop (:mod:`repro.speed.fastloop`).

Set ``REPRO_SPEED=0`` in the environment (or call :func:`set_enabled`)
to disable the whole layer and run the reference implementations.
"""

from __future__ import annotations

import os

#: Version of the predecoded form; part of every disk-cache key so a
#: format change can never resurrect stale artifacts.
SPEED_VERSION = 2   # 2: DecodeStats gained the non_minimal offsets field

_enabled = os.environ.get("REPRO_SPEED", "1") not in ("0", "false", "off")


def enabled() -> bool:
    """Is the fast path active? (``REPRO_SPEED=0`` turns it off.)"""
    return _enabled


def set_enabled(value: bool) -> None:
    """Toggle the fast path at runtime (used by the equivalence tests)."""
    global _enabled
    _enabled = bool(value)


from .modcache import ModuleCache, ModuleEntry  # noqa: E402

#: Process-wide decoded-module cache.  Harness instances attach/detach
#: the persistent artifact-cache layer; everything else just reads.
module_cache = ModuleCache()


def entry_for(module) -> "ModuleEntry | None":
    """The cache entry owning ``module``, or None if uncached/disabled."""
    if not _enabled:
        return None
    return module_cache.entry_for(module)


__all__ = ["SPEED_VERSION", "enabled", "set_enabled", "module_cache",
           "entry_for", "ModuleCache", "ModuleEntry"]
