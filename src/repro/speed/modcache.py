"""Decoded-module cache: share decode/validate/prepare work across runs.

A ``wabench run`` executes the same module on six engines; a warm rerun
executes it again.  The reference pipeline re-decodes, re-validates and
re-prepares every time, even though all three passes are pure functions
of the module bytes.  This cache keys the decoded :class:`Module`, its
decode stats, the interpreter's prepared side tables and the predecoded
fast code by ``sha256(wasm_bytes)``, so each is computed once per
process — and, when a persistent :class:`~repro.harness.cache
.ArtifactCache` is attached, once per cache directory.

The *modeled* cost of the skipped passes is still charged in full by
the pipeline (the charges are closed-form in the decode stats), so
counters and traces are byte-identical whether a lookup hits or misses.
Only wall clock changes.  Entries hold strong references to their
module, which keeps the ``id(module)`` side index sound: an id cannot
be reused while its entry is alive, and both are evicted together.
"""

from __future__ import annotations

import hashlib
import pickle
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..errors import ReproError as _ReproError
from . import predecode as _predecode

#: In-memory entry capacity.  A fuzz campaign touches ~100 modules; the
#: LRU bound keeps long-lived processes from holding every decoded
#: module forever while still covering a full benchmark sweep.
_DEFAULT_CAPACITY = 64


class ModuleEntry:
    """Everything derivable from one module's bytes, computed lazily."""

    __slots__ = ("sha", "module", "stats", "validated", "prepared",
                 "total_ops", "_fast", "_closures")

    def __init__(self, sha: str, module, stats, validated: bool = False):
        self.sha = sha
        self.module = module
        self.stats = stats
        self.validated = validated
        # Interpreter side tables: (functions list, total_ops), shared by
        # the wasm3/wamr loaders (prepare_function is profile-independent).
        self.prepared: Optional[List] = None
        self.total_ops = 0
        # Predecoded fast code keyed by (profile name, line_shift); holds
        # bound methods and semantic callables, so in-memory only.
        self._fast: Dict[Tuple[str, int], Dict[int, list]] = {}
        # Bound closure-compiled functions on the same key.  The
        # *source bundle* persists to disk (ModuleCache.closure_code);
        # the exec-compiled callables live here only.
        self._closures: Dict[Tuple[str, int], Dict[int, object]] = {}

    def fast_code(self, profile, line_shift: int) -> Optional[Dict[int, list]]:
        """Predecoded bodies for ``profile`` on a cache geometry, memoized."""
        if self.prepared is None:
            return None
        key = (profile.name, line_shift)
        fast = self._fast.get(key)
        if fast is None:
            fast = _predecode.predecode_functions(
                self.prepared, profile, line_shift)
            self._fast[key] = fast
        return fast


class ModuleCache:
    """LRU cache of :class:`ModuleEntry` with an optional disk layer."""

    def __init__(self, capacity: int = _DEFAULT_CAPACITY):
        self.capacity = capacity
        self._mem: "OrderedDict[str, ModuleEntry]" = OrderedDict()
        self._by_id: Dict[int, ModuleEntry] = {}
        self._disk = None  # duck-typed ArtifactCache (get_bytes/put_bytes)
        self._stats = None  # optional harness CacheStats for disk traffic
        # Wall-clock accounting, surfaced by PERFORMANCE.md tooling only;
        # deliberately not part of harness CacheStats so `[cache]` lines
        # and fuzz reports stay byte-identical with the layer disabled.
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0

    # -- configuration ----------------------------------------------------

    def attach_disk(self, cache, stats=None) -> None:
        """Use ``cache`` (an ArtifactCache, or None to detach) for
        persistence of decoded+validated modules and closure bundles.

        When ``stats`` (a harness :class:`CacheStats`) is given, disk
        traffic is surfaced there under the ``speed-module`` and
        ``closure`` kinds — that is what lets tests assert that pool
        workers hit shared artifacts instead of re-deriving them.
        In-memory reuse is never counted: it exists with no cache dir
        at all, and the `[cache]` line reports the *store*.
        """
        self._disk = cache
        self._stats = stats if cache is not None else None

    def clear(self) -> None:
        self._mem.clear()
        self._by_id.clear()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0

    # -- lookup / registration -------------------------------------------

    @staticmethod
    def sha_of(wasm_bytes: bytes) -> str:
        return hashlib.sha256(wasm_bytes).hexdigest()

    def lookup(self, wasm_bytes: bytes) -> Optional[ModuleEntry]:
        """Entry for these bytes, from memory or disk; None on miss."""
        sha = self.sha_of(wasm_bytes)
        entry = self._mem.get(sha)
        if entry is not None:
            self._mem.move_to_end(sha)
            self.hits += 1
            return entry
        entry = self._load_disk(sha)
        if entry is not None:
            self.disk_hits += 1
            if self._stats is not None:
                self._stats.hit("speed-module")
            self._insert(entry)
            return entry
        self.misses += 1
        if self._disk is not None and self._stats is not None:
            self._stats.miss("speed-module")
        return None

    def register(self, wasm_bytes: bytes, module, stats) -> ModuleEntry:
        """Adopt a freshly decoded (not yet validated) module."""
        entry = ModuleEntry(self.sha_of(wasm_bytes), module, stats)
        self._insert(entry)
        return entry

    def mark_validated(self, entry: ModuleEntry) -> None:
        """Record that validation passed; persist if a disk is attached.

        Only validated modules are written out — the disk layer must
        never let an invalid module skip validation on a later run.
        """
        entry.validated = True
        if self._disk is not None:
            payload = pickle.dumps((entry.module, entry.stats),
                                   protocol=pickle.HIGHEST_PROTOCOL)
            self._disk.put_bytes(self._disk_key(entry.sha), payload)

    def entry_for(self, module) -> Optional[ModuleEntry]:
        return self._by_id.get(id(module))

    def closure_code(self, entry: ModuleEntry, profile,
                     line_shift: int) -> Optional[Dict[int, object]]:
        """Closure-compiled functions for ``entry`` on this profile and
        cache geometry.

        The persistable source bundle is shared through the attached
        disk store under ``closure-<sha>-<profile>-<line_shift>-v<N>``,
        so ``--jobs`` pool workers (and later processes) bind a stored
        compilation instead of regenerating it.  Binding (exec) is
        always local — callables never cross process boundaries.
        """
        if entry.prepared is None:
            return None
        key = (profile.name, line_shift)
        code = entry._closures.get(key)
        if code is not None:
            return code
        from . import closures as _closures
        bundle = None
        if self._disk is not None:
            disk_key = self._closure_key(entry.sha, profile.name,
                                         line_shift)
            bundle = self._disk.get_pickle(disk_key)
            if not isinstance(bundle, dict):
                # Stale/corrupt payload (get_pickle already applied the
                # evict-vs-miss narrowing): recompute below.
                bundle = None
            if self._stats is not None:
                if bundle is not None:
                    self._stats.hit("closure")
                else:
                    self._stats.miss("closure")
        code = None
        if bundle is not None:
            try:
                code = _closures.bind_bundle(bundle)
            except (SyntaxError, ValueError, TypeError, KeyError,
                    _ReproError):
                # A stored bundle that unpickles but will not compile is
                # as good as corrupt: fall through and regenerate.
                code = None
        if code is None:
            bundle = _closures.compile_bundle(entry.prepared, profile,
                                              line_shift)
            if self._disk is not None:
                self._disk.put_pickle(
                    self._closure_key(entry.sha, profile.name,
                                      line_shift), bundle)
            code = _closures.bind_bundle(bundle)
        entry._closures[key] = code
        return code

    # -- internals --------------------------------------------------------

    @staticmethod
    def _disk_key(sha: str) -> str:
        from . import SPEED_VERSION
        return f"speed-module-{sha}-v{SPEED_VERSION}"

    @staticmethod
    def _closure_key(sha: str, profile_name: str, line_shift: int) -> str:
        from . import SPEED_VERSION
        return f"closure-{sha}-{profile_name}-{line_shift}-v{SPEED_VERSION}"

    def _load_disk(self, sha: str) -> Optional[ModuleEntry]:
        if self._disk is None:
            return None
        blob = self._disk.get_bytes(self._disk_key(sha))
        if blob is None:
            return None
        try:
            module, stats = pickle.loads(blob)
        except (pickle.UnpicklingError, EOFError, ValueError,
                AttributeError, ImportError):
            # Corrupt or stale payload: behave exactly like a miss.
            # Anything else (MemoryError, KeyboardInterrupt, bugs in
            # __setstate__) should propagate, not masquerade as a miss.
            return None
        return ModuleEntry(sha, module, stats, validated=True)

    def _insert(self, entry: ModuleEntry) -> None:
        self._mem[entry.sha] = entry
        self._mem.move_to_end(entry.sha)
        self._by_id[id(entry.module)] = entry
        while len(self._mem) > self.capacity:
            _, evicted = self._mem.popitem(last=False)
            self._by_id.pop(id(evicted.module), None)
