"""The interpreter fast loop: executes predecoded ``fcode``.

Byte-for-byte model equivalence with ``Interpreter._run_ref`` is the
whole contract (see PERFORMANCE.md and tests/test_speed.py): every
counter charge, predictor update, cache access and trap message happens
with the same values and — where state is shared — in the same order as
the reference loop.  What this loop removes is pure Python overhead:
opcode classification chains, side-table dict lookups, codec dict
lookups, and per-op loop trips for fused sequences.

Two model hot paths are additionally inlined here, with their object
state shadowed in frame locals:

* the indirect-target predictor, in full: the steady-state hit (both
  components already predict the dispatched target, so the chooser and
  tables are provably unchanged — only the target history advances)
  and the update path (chooser, BTB and history-table writes applied
  directly to the model's dicts, the miss penalty charged to the
  pending stall count);
* the L1I cache hit (tick bump + LRU touch, no miss recursion).

Shadowed state (pending branch/ref/stall counts, the target history,
the L1I tick) is written back at every point the rest of the system can
observe it: before guest/host calls, before every trap, and at frame
exit.  L1I misses fall back to the real cache method after a
write-back, so the shared L2/L3 and eviction order stay exact.

The dispatch chain is ordered by measured kind frequency on the
benchmark suite (binary ops and the local·local/const fusions dominate
numeric kernels), not by declaration order.

``call_indirect`` sites carry an inline cache mapping table element
index to resolved callee function index.  The cache is sound because
the funcref table of a module never mutates during execution and is
rebuilt identically on every instantiation; the cached value is the
*index* (not the callee entry), because host-function entries are
rebound per run.
"""

from __future__ import annotations

from typing import List

from ..errors import ReproError, Trap
from ..wasm import opcodes as op
from .predecode import (
    F_LG_CONST_BIN, F_LG_CONST_CMP_BRIF, F_LG_CONST_STORE, F_LG_LG_BIN,
    F_LG_LG_CMP_BRIF, F_LG_LG_STORE, F_LG_LOAD, K_BAD, K_BIN, K_BR,
    K_BR_IF, K_BR_TABLE, K_CALL, K_CALL_INDIRECT, K_CONST, K_DROP,
    K_ELSE, K_GLOBAL_GET, K_GLOBAL_SET, K_IF, K_LOAD, K_LOCAL_GET,
    K_LOCAL_SET, K_LOCAL_TEE, K_MEMORY_GROW, K_MEMORY_SIZE, K_PASS,
    K_RETURN, K_SELECT, K_STORE, K_UN, K_UNREACHABLE)


def fast_run(interp, func, fcode: list, args: List):
    """Run one frame of predecoded code; returns like the reference."""
    n = len(fcode)
    locals_ = args + [0.0 if t in (0x7D, 0x7C) else 0
                      for t in func.local_types[len(args):]]
    stack: List = []
    push = stack.append
    pop = stack.pop

    cpu = interp.cpu
    counters = cpu.counters
    branches = cpu.branches
    indirect = branches.indirect_branch
    cond_branch = branches.cond_branch
    br_call = branches.call
    br_ret = branches.ret
    penalty = branches.penalty
    l1d = counters.l1d
    l1i = cpu.caches.l1i
    l1i_access = l1i.access_line
    l1d_access = cpu.caches.l1d.access_line
    line_shift = cpu.caches.line_shift
    guest_line_base = 0x1000_0000 >> line_shift
    mem = interp.memory
    globals_ = interp.globals
    functions = interp.functions
    table = interp.table
    exec_ = interp._exec
    func_name = func.name
    stall = 0
    instr = 0
    ldr = 0

    # Shadowed model state (see module docstring).  ``th`` mirrors the
    # predictor's target history, ``br`` counts pending branch events,
    # ``l1i_tick``/``l1i_refs`` mirror the L1I LRU clock and pending
    # reference count.  All are written back before any observation.
    # The predictor's chooser/BTB/history tables are updated in place.
    imask = branches._itc_mask
    btb = branches._btb
    itc = branches._itc
    metad = branches._meta
    th = branches._target_history
    br = 0
    l1i_sets = l1i.sets
    l1i_smask = l1i.set_mask
    l1i_stats = l1i.stats
    l1i_tick = l1i.tick
    l1i_refs = 0

    pc = 0
    while pc < n:
        e = fcode[pc]
        k = e[0]
        # Every entry — single or fused — leads with (kind, summed cost,
        # first dispatch site, first opcode, first handler line), so the
        # first op's charges are hoisted out of the kind chain.
        instr += e[1]
        t = e[3]
        si = e[2] & imask
        hi = th & imask
        br += 1
        if btb.get(si) == t and itc.get(hi) == t:
            th = ((th << 4) ^ t) & imask
        else:
            sp = btb.get(si)
            hp = itc.get(hi)
            meta = metad.get(si, 1)
            predicted = hp if meta >= 2 else sp
            if hp == t:
                if sp != t and meta < 3:
                    metad[si] = meta + 1
            elif sp == t and meta > 0:
                metad[si] = meta - 1
            btb[si] = t
            itc[hi] = t
            th = ((th << 4) ^ t) & imask
            if predicted != t:
                counters.branch_misses += 1
                stall += penalty
        ldr += 2
        ln = e[4]
        cs = l1i_sets[ln & l1i_smask]
        if ln in cs:
            l1i_tick += 1
            l1i_refs += 1
            cs[ln] = l1i_tick
        else:
            l1i.tick = l1i_tick
            l1i_stats.refs += l1i_refs
            l1i_refs = 0
            stall += l1i_access(ln)
            l1i_tick = l1i.tick

        if k == K_BIN:
            b = pop()
            a = pop()
            try:
                push(e[5](a, b))
            except Trap:
                counters.instructions += instr
                counters.stall_cycles += stall
                counters.branches += br
                l1d.refs += ldr
                l1i_stats.refs += l1i_refs
                branches._target_history = th
                l1i.tick = l1i_tick
                raise
            pc += 1
        elif k == F_LG_CONST_BIN:
            ldr += 4
            ln = e[7]
            cs = l1i_sets[ln & l1i_smask]
            if ln in cs:
                l1i_tick += 1
                l1i_refs += 1
                cs[ln] = l1i_tick
            else:
                l1i.tick = l1i_tick
                l1i_stats.refs += l1i_refs
                l1i_refs = 0
                stall += l1i_access(ln)
                l1i_tick = l1i.tick
            t = e[6]
            si = e[5] & imask
            hi = th & imask
            br += 1
            if btb.get(si) == t and itc.get(hi) == t:
                th = ((th << 4) ^ t) & imask
            else:
                sp = btb.get(si)
                hp = itc.get(hi)
                meta = metad.get(si, 1)
                predicted = hp if meta >= 2 else sp
                if hp == t:
                    if sp != t and meta < 3:
                        metad[si] = meta + 1
                elif sp == t and meta > 0:
                    metad[si] = meta - 1
                btb[si] = t
                itc[hi] = t
                th = ((th << 4) ^ t) & imask
                if predicted != t:
                    counters.branch_misses += 1
                    stall += penalty
            t = e[9]
            si = e[8] & imask
            hi = th & imask
            br += 1
            if btb.get(si) == t and itc.get(hi) == t:
                th = ((th << 4) ^ t) & imask
            else:
                sp = btb.get(si)
                hp = itc.get(hi)
                meta = metad.get(si, 1)
                predicted = hp if meta >= 2 else sp
                if hp == t:
                    if sp != t and meta < 3:
                        metad[si] = meta + 1
                elif sp == t and meta > 0:
                    metad[si] = meta - 1
                btb[si] = t
                itc[hi] = t
                th = ((th << 4) ^ t) & imask
                if predicted != t:
                    counters.branch_misses += 1
                    stall += penalty
            ln = e[10]
            cs = l1i_sets[ln & l1i_smask]
            if ln in cs:
                l1i_tick += 1
                l1i_refs += 1
                cs[ln] = l1i_tick
            else:
                l1i.tick = l1i_tick
                l1i_stats.refs += l1i_refs
                l1i_refs = 0
                stall += l1i_access(ln)
                l1i_tick = l1i.tick
            try:
                push(e[13](locals_[e[11]], e[12]))
            except Trap:
                counters.instructions += instr
                counters.stall_cycles += stall
                counters.branches += br
                l1d.refs += ldr
                l1i_stats.refs += l1i_refs
                branches._target_history = th
                l1i.tick = l1i_tick
                raise
            pc = e[14]
        elif k == K_CONST:
            push(e[5])
            pc += 1
        elif k == K_PASS:
            pc += 1
        elif k == K_LOAD:
            addr = pop() + e[8]
            size = e[5]
            if addr + size > mem.size:
                counters.instructions += instr
                counters.stall_cycles += stall
                counters.branches += br
                l1d.refs += ldr
                l1i_stats.refs += l1i_refs
                branches._target_history = th
                l1i.tick = l1i_tick
                raise Trap("out of bounds memory access",
                           f"{func_name}: load at {addr}")
            value = e[6](mem.data, addr)[0]
            mask = e[7]
            push((value & mask) if mask else value)
            stall += l1d_access(guest_line_base + (addr >> line_shift))
            pc += 1
        elif k == K_LOCAL_SET:
            locals_[e[5]] = pop()
            pc += 1
        elif k == K_UN:
            try:
                stack[-1] = e[5](stack[-1])
            except Trap:
                counters.instructions += instr
                counters.stall_cycles += stall
                counters.branches += br
                l1d.refs += ldr
                l1i_stats.refs += l1i_refs
                branches._target_history = th
                l1i.tick = l1i_tick
                raise
            pc += 1
        elif k == K_BR_IF:
            cond = pop()
            cond_branch(e[2], bool(cond))
            if cond:
                arity = e[6]
                if arity:
                    vals = stack[-arity:]
                    del stack[e[7]:]
                    stack.extend(vals)
                else:
                    del stack[e[7]:]
                pc = e[5]
            else:
                pc += 1
        elif k == K_LOCAL_GET:
            push(locals_[e[5]])
            pc += 1
        elif k == K_BR:
            arity = e[6]
            if arity:
                vals = stack[-arity:]
                del stack[e[7]:]
                stack.extend(vals)
            else:
                del stack[e[7]:]
            pc = e[5]
        elif k == K_LOCAL_TEE:
            locals_[e[5]] = stack[-1]
            pc += 1
        elif k == F_LG_LG_STORE or k == F_LG_CONST_STORE:
            ldr += 4
            ln = e[7]
            cs = l1i_sets[ln & l1i_smask]
            if ln in cs:
                l1i_tick += 1
                l1i_refs += 1
                cs[ln] = l1i_tick
            else:
                l1i.tick = l1i_tick
                l1i_stats.refs += l1i_refs
                l1i_refs = 0
                stall += l1i_access(ln)
                l1i_tick = l1i.tick
            t = e[6]
            si = e[5] & imask
            hi = th & imask
            br += 1
            if btb.get(si) == t and itc.get(hi) == t:
                th = ((th << 4) ^ t) & imask
            else:
                sp = btb.get(si)
                hp = itc.get(hi)
                meta = metad.get(si, 1)
                predicted = hp if meta >= 2 else sp
                if hp == t:
                    if sp != t and meta < 3:
                        metad[si] = meta + 1
                elif sp == t and meta > 0:
                    metad[si] = meta - 1
                btb[si] = t
                itc[hi] = t
                th = ((th << 4) ^ t) & imask
                if predicted != t:
                    counters.branch_misses += 1
                    stall += penalty
            t = e[9]
            si = e[8] & imask
            hi = th & imask
            br += 1
            if btb.get(si) == t and itc.get(hi) == t:
                th = ((th << 4) ^ t) & imask
            else:
                sp = btb.get(si)
                hp = itc.get(hi)
                meta = metad.get(si, 1)
                predicted = hp if meta >= 2 else sp
                if hp == t:
                    if sp != t and meta < 3:
                        metad[si] = meta + 1
                elif sp == t and meta > 0:
                    metad[si] = meta - 1
                btb[si] = t
                itc[hi] = t
                th = ((th << 4) ^ t) & imask
                if predicted != t:
                    counters.branch_misses += 1
                    stall += penalty
            ln = e[10]
            cs = l1i_sets[ln & l1i_smask]
            if ln in cs:
                l1i_tick += 1
                l1i_refs += 1
                cs[ln] = l1i_tick
            else:
                l1i.tick = l1i_tick
                l1i_stats.refs += l1i_refs
                l1i_refs = 0
                stall += l1i_access(ln)
                l1i_tick = l1i.tick
            if k == F_LG_LG_STORE:
                value = locals_[e[12]]
                mask = e[15]
                if mask:
                    value &= mask
                addr = locals_[e[11]] + e[16]
                size, pack, nxt = e[13], e[14], e[17]
            else:
                value = e[12]
                addr = locals_[e[11]] + e[15]
                size, pack, nxt = e[13], e[14], e[16]
            if addr + size > mem.size:
                counters.instructions += instr
                counters.stall_cycles += stall
                counters.branches += br
                l1d.refs += ldr
                l1i_stats.refs += l1i_refs
                branches._target_history = th
                l1i.tick = l1i_tick
                raise Trap("out of bounds memory access",
                           f"{func_name}: store at {addr}")
            pack(mem.data, addr, value)
            mem.touched.add(addr >> 12)
            stall += l1d_access(guest_line_base + (addr >> line_shift))
            pc = nxt
        elif k == K_STORE:
            value = pop()
            addr = pop() + e[8]
            size = e[5]
            if addr + size > mem.size:
                counters.instructions += instr
                counters.stall_cycles += stall
                counters.branches += br
                l1d.refs += ldr
                l1i_stats.refs += l1i_refs
                branches._target_history = th
                l1i.tick = l1i_tick
                raise Trap("out of bounds memory access",
                           f"{func_name}: store at {addr}")
            mask = e[7]
            e[6](mem.data, addr, (value & mask) if mask else value)
            mem.touched.add(addr >> 12)
            stall += l1d_access(guest_line_base + (addr >> line_shift))
            pc += 1
        elif k == F_LG_LOAD:
            ldr += 2
            t = e[6]
            si = e[5] & imask
            hi = th & imask
            br += 1
            if btb.get(si) == t and itc.get(hi) == t:
                th = ((th << 4) ^ t) & imask
            else:
                sp = btb.get(si)
                hp = itc.get(hi)
                meta = metad.get(si, 1)
                predicted = hp if meta >= 2 else sp
                if hp == t:
                    if sp != t and meta < 3:
                        metad[si] = meta + 1
                elif sp == t and meta > 0:
                    metad[si] = meta - 1
                btb[si] = t
                itc[hi] = t
                th = ((th << 4) ^ t) & imask
                if predicted != t:
                    counters.branch_misses += 1
                    stall += penalty
            ln = e[7]
            cs = l1i_sets[ln & l1i_smask]
            if ln in cs:
                l1i_tick += 1
                l1i_refs += 1
                cs[ln] = l1i_tick
            else:
                l1i.tick = l1i_tick
                l1i_stats.refs += l1i_refs
                l1i_refs = 0
                stall += l1i_access(ln)
                l1i_tick = l1i.tick
            addr = locals_[e[8]] + e[12]
            size = e[9]
            if addr + size > mem.size:
                counters.instructions += instr
                counters.stall_cycles += stall
                counters.branches += br
                l1d.refs += ldr
                l1i_stats.refs += l1i_refs
                branches._target_history = th
                l1i.tick = l1i_tick
                raise Trap("out of bounds memory access",
                           f"{func_name}: load at {addr}")
            value = e[10](mem.data, addr)[0]
            mask = e[11]
            push((value & mask) if mask else value)
            stall += l1d_access(guest_line_base + (addr >> line_shift))
            pc = e[13]
        elif k == F_LG_LG_CMP_BRIF or k == F_LG_CONST_CMP_BRIF:
            ldr += 6
            ln = e[7]
            cs = l1i_sets[ln & l1i_smask]
            if ln in cs:
                l1i_tick += 1
                l1i_refs += 1
                cs[ln] = l1i_tick
            else:
                l1i.tick = l1i_tick
                l1i_stats.refs += l1i_refs
                l1i_refs = 0
                stall += l1i_access(ln)
                l1i_tick = l1i.tick
            t = e[6]
            si = e[5] & imask
            hi = th & imask
            br += 1
            if btb.get(si) == t and itc.get(hi) == t:
                th = ((th << 4) ^ t) & imask
            else:
                sp = btb.get(si)
                hp = itc.get(hi)
                meta = metad.get(si, 1)
                predicted = hp if meta >= 2 else sp
                if hp == t:
                    if sp != t and meta < 3:
                        metad[si] = meta + 1
                elif sp == t and meta > 0:
                    metad[si] = meta - 1
                btb[si] = t
                itc[hi] = t
                th = ((th << 4) ^ t) & imask
                if predicted != t:
                    counters.branch_misses += 1
                    stall += penalty
            t = e[9]
            si = e[8] & imask
            hi = th & imask
            br += 1
            if btb.get(si) == t and itc.get(hi) == t:
                th = ((th << 4) ^ t) & imask
            else:
                sp = btb.get(si)
                hp = itc.get(hi)
                meta = metad.get(si, 1)
                predicted = hp if meta >= 2 else sp
                if hp == t:
                    if sp != t and meta < 3:
                        metad[si] = meta + 1
                elif sp == t and meta > 0:
                    metad[si] = meta - 1
                btb[si] = t
                itc[hi] = t
                th = ((th << 4) ^ t) & imask
                if predicted != t:
                    counters.branch_misses += 1
                    stall += penalty
            ln = e[10]
            cs = l1i_sets[ln & l1i_smask]
            if ln in cs:
                l1i_tick += 1
                l1i_refs += 1
                cs[ln] = l1i_tick
            else:
                l1i.tick = l1i_tick
                l1i_stats.refs += l1i_refs
                l1i_refs = 0
                stall += l1i_access(ln)
                l1i_tick = l1i.tick
            t = e[12]
            si = e[11] & imask
            hi = th & imask
            br += 1
            if btb.get(si) == t and itc.get(hi) == t:
                th = ((th << 4) ^ t) & imask
            else:
                sp = btb.get(si)
                hp = itc.get(hi)
                meta = metad.get(si, 1)
                predicted = hp if meta >= 2 else sp
                if hp == t:
                    if sp != t and meta < 3:
                        metad[si] = meta + 1
                elif sp == t and meta > 0:
                    metad[si] = meta - 1
                btb[si] = t
                itc[hi] = t
                th = ((th << 4) ^ t) & imask
                if predicted != t:
                    counters.branch_misses += 1
                    stall += penalty
            ln = e[13]
            cs = l1i_sets[ln & l1i_smask]
            if ln in cs:
                l1i_tick += 1
                l1i_refs += 1
                cs[ln] = l1i_tick
            else:
                l1i.tick = l1i_tick
                l1i_stats.refs += l1i_refs
                l1i_refs = 0
                stall += l1i_access(ln)
                l1i_tick = l1i.tick
            b = locals_[e[15]] if k == F_LG_LG_CMP_BRIF else e[15]
            cond = e[16](locals_[e[14]], b)
            cond_branch(e[11], bool(cond))
            if cond:
                arity = e[18]
                if arity:
                    vals = stack[-arity:]
                    del stack[e[19]:]
                    stack.extend(vals)
                else:
                    del stack[e[19]:]
                pc = e[17]
            else:
                pc = e[20]
        elif k == F_LG_LG_BIN:
            ldr += 4
            ln = e[7]
            cs = l1i_sets[ln & l1i_smask]
            if ln in cs:
                l1i_tick += 1
                l1i_refs += 1
                cs[ln] = l1i_tick
            else:
                l1i.tick = l1i_tick
                l1i_stats.refs += l1i_refs
                l1i_refs = 0
                stall += l1i_access(ln)
                l1i_tick = l1i.tick
            t = e[6]
            si = e[5] & imask
            hi = th & imask
            br += 1
            if btb.get(si) == t and itc.get(hi) == t:
                th = ((th << 4) ^ t) & imask
            else:
                sp = btb.get(si)
                hp = itc.get(hi)
                meta = metad.get(si, 1)
                predicted = hp if meta >= 2 else sp
                if hp == t:
                    if sp != t and meta < 3:
                        metad[si] = meta + 1
                elif sp == t and meta > 0:
                    metad[si] = meta - 1
                btb[si] = t
                itc[hi] = t
                th = ((th << 4) ^ t) & imask
                if predicted != t:
                    counters.branch_misses += 1
                    stall += penalty
            t = e[9]
            si = e[8] & imask
            hi = th & imask
            br += 1
            if btb.get(si) == t and itc.get(hi) == t:
                th = ((th << 4) ^ t) & imask
            else:
                sp = btb.get(si)
                hp = itc.get(hi)
                meta = metad.get(si, 1)
                predicted = hp if meta >= 2 else sp
                if hp == t:
                    if sp != t and meta < 3:
                        metad[si] = meta + 1
                elif sp == t and meta > 0:
                    metad[si] = meta - 1
                btb[si] = t
                itc[hi] = t
                th = ((th << 4) ^ t) & imask
                if predicted != t:
                    counters.branch_misses += 1
                    stall += penalty
            ln = e[10]
            cs = l1i_sets[ln & l1i_smask]
            if ln in cs:
                l1i_tick += 1
                l1i_refs += 1
                cs[ln] = l1i_tick
            else:
                l1i.tick = l1i_tick
                l1i_stats.refs += l1i_refs
                l1i_refs = 0
                stall += l1i_access(ln)
                l1i_tick = l1i.tick
            try:
                push(e[13](locals_[e[11]], locals_[e[12]]))
            except Trap:
                counters.instructions += instr
                counters.stall_cycles += stall
                counters.branches += br
                l1d.refs += ldr
                l1i_stats.refs += l1i_refs
                branches._target_history = th
                l1i.tick = l1i_tick
                raise
            pc = e[14]
        elif k == K_IF:
            cond = pop()
            cond_branch(e[2], not cond)
            if not cond:
                pc = e[5]
            else:
                pc += 1
        elif k == K_ELSE:
            pc = e[5]
        elif k == K_CALL:
            counters.instructions += instr
            counters.stall_cycles += stall
            counters.branches += br
            l1d.refs += ldr
            l1i_stats.refs += l1i_refs
            branches._target_history = th
            l1i.tick = l1i_tick
            instr = 0
            stall = 0
            br = 0
            ldr = 0
            l1i_refs = 0
            callee = functions[e[5]]
            br_call(e[2])
            if callee[0] == "host":
                n_args = callee[2]
                call_args = stack[len(stack) - n_args:] if n_args else []
                del stack[len(stack) - n_args:]
                result = callee[1](mem, *call_args)
            else:
                prepared = callee[1]
                n_args = prepared.params
                call_args = stack[len(stack) - n_args:] if n_args else []
                del stack[len(stack) - n_args:]
                result = exec_(prepared, call_args)
            br_ret(e[2])
            th = branches._target_history
            l1i_tick = l1i.tick
            if result is not None:
                push(result)
            pc += 1
        elif k == K_CALL_INDIRECT:
            counters.instructions += instr
            counters.stall_cycles += stall
            counters.branches += br
            l1d.refs += ldr
            l1i_stats.refs += l1i_refs
            branches._target_history = th
            l1i.tick = l1i_tick
            instr = 0
            stall = 0
            br = 0
            ldr = 0
            l1i_refs = 0
            elem_index = pop()
            ic = e[7]
            callee_index = ic.get(elem_index)
            if callee_index is None:
                if not 0 <= elem_index < len(table):
                    raise Trap("undefined element")
                callee_index = table[elem_index]
                if callee_index < 0:
                    raise Trap("uninitialized element")
                callee = functions[callee_index]
                expected = interp._sig_of_type_index(e[5])
                actual = interp._sig_of_callee(callee)
                if expected != actual:
                    raise Trap("indirect call type mismatch")
                ic[elem_index] = callee_index
            else:
                callee = functions[callee_index]
            indirect(e[6], callee_index)
            if callee[0] == "host":
                n_args = callee[2]
            else:
                n_args = callee[1].params
            call_args = stack[len(stack) - n_args:] if n_args else []
            del stack[len(stack) - n_args:]
            br_call(e[2])
            if callee[0] == "host":
                result = callee[1](mem, *call_args)
            else:
                result = exec_(callee[1], call_args)
            br_ret(e[2])
            th = branches._target_history
            l1i_tick = l1i.tick
            if result is not None:
                push(result)
            pc += 1
        elif k == K_GLOBAL_GET:
            push(globals_[e[5]])
            ldr += 1
            pc += 1
        elif k == K_GLOBAL_SET:
            globals_[e[5]] = pop()
            ldr += 1
            pc += 1
        elif k == K_DROP:
            pop()
            pc += 1
        elif k == K_SELECT:
            c = pop()
            b = pop()
            a = pop()
            push(a if c else b)
            pc += 1
        elif k == K_BR_TABLE:
            index = pop()
            entries = e[5]
            target = entries[index] if index < len(entries) else e[6]
            t = target[0]
            si = e[2] & imask
            hi = th & imask
            br += 1
            if btb.get(si) == t and itc.get(hi) == t:
                th = ((th << 4) ^ t) & imask
            else:
                sp = btb.get(si)
                hp = itc.get(hi)
                meta = metad.get(si, 1)
                predicted = hp if meta >= 2 else sp
                if hp == t:
                    if sp != t and meta < 3:
                        metad[si] = meta + 1
                elif sp == t and meta > 0:
                    metad[si] = meta - 1
                btb[si] = t
                itc[hi] = t
                th = ((th << 4) ^ t) & imask
                if predicted != t:
                    counters.branch_misses += 1
                    stall += penalty
            tgt, arity, hgt = target
            if arity:
                vals = stack[-arity:]
                del stack[hgt:]
                stack.extend(vals)
            else:
                del stack[hgt:]
            pc = tgt
        elif k == K_RETURN:
            break
        elif k == K_MEMORY_SIZE:
            push(mem.pages)
            pc += 1
        elif k == K_MEMORY_GROW:
            counters.instructions += 200
            push(mem.grow(pop()) & 0xFFFFFFFF)
            pc += 1
        elif k == K_UNREACHABLE:
            counters.instructions += instr
            counters.stall_cycles += stall
            counters.branches += br
            l1d.refs += ldr
            l1i_stats.refs += l1i_refs
            branches._target_history = th
            l1i.tick = l1i_tick
            raise Trap("unreachable")
        else:  # K_BAD — validated modules never reach this
            # The reference loses pending instr/stall on this internal
            # error; only the shadowed predictor/cache state is synced.
            counters.branches += br
            l1d.refs += ldr
            l1i_stats.refs += l1i_refs
            branches._target_history = th
            l1i.tick = l1i_tick
            raise ReproError(f"interpreter: unhandled opcode "
                             f"{op.name_of(e[3])}")

    counters.instructions += instr
    counters.stall_cycles += stall
    counters.branches += br
    l1d.refs += ldr
    l1i_stats.refs += l1i_refs
    branches._target_history = th
    l1i.tick = l1i_tick
    if func.results:
        return stack[-1] if stack else 0
    return None
