from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "WABench-repro: a full-system model reproducing 'How Far We've Come"
        " - A Characterization Study of Standalone WebAssembly Runtimes'"
        " (IISWC 2022)"
    ),
    long_description=open("README.md").read() if __import__("os").path.exists("README.md") else "",
    long_description_content_type="text/markdown",
    python_requires=">=3.9",
    license="Apache-2.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    entry_points={"console_scripts": [
        "wabench = repro.harness.cli:main",
        "wasicc = repro.compiler.driver:main",
    ]},
)
