#!/usr/bin/env python3
"""Choosing a runtime for an edge device (the paper's Section 7 scenario).

The paper's discussion recommends matching the runtime to the deployment:
JIT runtimes are faster but heavier; interpreters fit resource-constrained
devices.  This example plays that decision out for an IoT-style workload —
a sensor-fusion filter that runs periodically on a gateway — by measuring
each runtime's cold-start time, steady-state time, and peak memory, then
applying a memory budget.
"""

from repro.compiler import compile_source
from repro.native import nativecc, run_native
from repro.runtimes import ALL_RUNTIME_NAMES, make_runtime

SENSOR_FILTER = r"""
/* Exponential smoothing + outlier rejection over a sensor trace,
   then a small FFT-free spectral proxy (Goertzel) per channel. */
#define CHANNELS 4
#define SAMPLES 600

double trace[CHANNELS][SAMPLES];
double smoothed[CHANNELS][SAMPLES];

void synth_trace(void) {
    unsigned int state = 0xE19Eu;
    int c, t;
    for (c = 0; c < CHANNELS; c++)
        for (t = 0; t < SAMPLES; t++) {
            double base = 20.0 + 4.0 * sin((double)t * 0.07 * (double)(c + 1));
            state = state * 1664525u + 1013904223u;
            base += (double)((state >> 20) & 255u) / 64.0 - 2.0;
            if ((state & 0xFFFu) == 0u) base += 40.0;   /* outlier */
            trace[c][t] = base;
        }
}

void smooth_channel(int c) {
    double alpha = 0.15;
    double level = trace[c][0];
    int t;
    for (t = 0; t < SAMPLES; t++) {
        double x = trace[c][t];
        if (fabs(x - level) > 15.0) x = level;  /* reject outliers */
        level = level + alpha * (x - level);
        smoothed[c][t] = level;
    }
}

double goertzel(int c, double freq) {
    double w = 2.0 * 3.141592653589793 * freq;
    double coeff = 2.0 * cos(w);
    double s0 = 0.0, s1 = 0.0, s2 = 0.0;
    int t;
    for (t = 0; t < SAMPLES; t++) {
        s0 = coeff * s1 - s2 + smoothed[c][t];
        s2 = s1;
        s1 = s0;
    }
    return s1 * s1 + s2 * s2 - coeff * s1 * s2;
}

int main(void) {
    int c;
    synth_trace();
    for (c = 0; c < CHANNELS; c++) smooth_channel(c);
    for (c = 0; c < CHANNELS; c++) {
        print_s("ch"); print_i(c);
        print_s(" power="); print_f(goertzel(c, 0.01));
        print_nl();
    }
    return 0;
}
"""

MEMORY_BUDGET_MB = 4.0   # a small gateway-class device


def main() -> None:
    native = run_native(nativecc(SENSOR_FILTER, 2))
    artifact = compile_source(SENSOR_FILTER, 2)
    print(f"workload: sensor fusion, module = {artifact.binary_size} bytes")
    print(f"device memory budget: {MEMORY_BUDGET_MB:.0f} MB\n")

    rows = []
    for name in ALL_RUNTIME_NAMES:
        rt = make_runtime(name)
        res = rt.run(artifact.wasm_bytes)
        assert res.stdout == native.stdout
        rows.append((name, rt.mode, res.compile_seconds * 1e3,
                     res.seconds * 1e3, res.mrss_bytes / 1e6))

    print(f"{'runtime':10s} {'mode':7s} {'startup ms':>11s} "
          f"{'total ms':>9s} {'MRSS MB':>8s}  verdict")
    for name, mode, startup, total, mrss in rows:
        fits = mrss <= MEMORY_BUDGET_MB
        verdict = "fits budget" if fits else "over budget"
        print(f"{name:10s} {mode:7s} {startup:11.4f} {total:9.4f} "
              f"{mrss:8.2f}  {verdict}")

    feasible = [(t, n) for n, _m, _s, t, mrss in rows
                if mrss <= MEMORY_BUDGET_MB]
    if feasible:
        best = min(feasible)
        print(f"\nrecommendation: {best[1]} — fastest runtime inside the "
              "memory budget")
        print("(the paper's conclusion: interpreters for constrained "
              "devices, JITs where memory allows)")


if __name__ == "__main__":
    main()
