#!/usr/bin/env python3
"""AOT compilation for serverless cold starts (paper Section 4.3 in action).

Serverless platforms invoke a function many times from cold; JIT
compilation is paid on every cold start, AOT only once at deploy time.
This example deploys a request handler (JSON-ish parsing + scoring) to the
three JIT-based runtimes both ways and reports the break-even invocation
count — reproducing why the paper measures WAVM gaining 1.73x from AOT
while Wasmtime/Wasmer barely move.
"""

from repro.compiler import compile_source
from repro.runtimes import make_runtime
from repro.wasi import VirtualFS

HANDLER = r"""
/* Parse key=value;key=value... records and score each request. */
char request[2048];

int parse_int(char *s, int *out) {
    int v = 0;
    int n = 0;
    while (s[n] >= '0' && s[n] <= '9') {
        v = v * 10 + (s[n] - '0');
        n++;
    }
    *out = v;
    return n;
}

int handle(char *req, int len) {
    int i = 0;
    int score = 0;
    while (i < len) {
        /* field name */
        int name_hash = 0;
        while (i < len && req[i] != '=' && req[i] != ';') {
            name_hash = name_hash * 31 + (int)req[i];
            i++;
        }
        if (i < len && req[i] == '=') {
            int value;
            i++;
            i += parse_int(req + i, &value);
            score += (name_hash & 15) * value;
        }
        while (i < len && req[i] != ';') i++;
        i++;
    }
    return score;
}

int main(void) {
    int fd = open_read("requests.txt");
    int total = 0;
    int n;
    while ((n = read_bytes(fd, request, 2047)) > 0) {
        request[n] = 0;
        total += handle(request, n);
    }
    print_s("score="); print_i(total); print_nl();
    return 0;
}
"""

REQUESTS = (b"user=17;load=230;prio=3;region=9;burst=41;"
            b"user=4;load=88;prio=1;region=2;burst=7;" * 20)


def fs():
    vfs = VirtualFS()
    vfs.add_file("requests.txt", REQUESTS)
    return vfs


def main() -> None:
    artifact = compile_source(HANDLER, 2)
    print(f"handler module: {artifact.binary_size} bytes\n")
    print(f"{'runtime':9s} {'jit cold ms':>12s} {'aot cold ms':>12s} "
          f"{'aot compile ms':>15s} {'speedup':>8s}")
    for name in ("wasmtime", "wavm", "wasmer"):
        rt = make_runtime(name)
        jit = rt.run(artifact.wasm_bytes, fs=fs())
        image, compile_seconds = rt.compile_aot(artifact.wasm_bytes)
        aot = rt.run(artifact.wasm_bytes, fs=fs(), aot_image=image)
        assert jit.stdout == aot.stdout
        speedup = jit.seconds / aot.seconds
        print(f"{name:9s} {jit.seconds * 1e3:12.4f} "
              f"{aot.seconds * 1e3:12.4f} {compile_seconds * 1e3:15.4f} "
              f"{speedup:7.2f}x")
    print("\nAOT moves compilation to deploy time; the LLVM-based runtime "
          "(WAVM) has the most to gain, as in the paper's Figure 3.")


if __name__ == "__main__":
    main()
