#!/usr/bin/env python3
"""Quickstart: compile a C program and run it on all five runtime models.

This is the 5-minute tour: write MiniC (the C subset), compile it to
WebAssembly with ``wasicc``, execute it natively and on every standalone
runtime the paper studies, and read the paper's measurements back.
"""

from repro.compiler import compile_source
from repro.native import nativecc, run_native
from repro.runtimes import ALL_RUNTIME_NAMES, make_runtime

SOURCE = r"""
/* Estimate pi two ways and hash some memory traffic. */
int sieve[2000];

int count_primes(int limit) {
    int i, j, count = 0;
    for (i = 0; i < limit; i++) sieve[i] = 1;
    for (i = 2; i < limit; i++) {
        if (!sieve[i]) continue;
        count++;
        for (j = i + i; j < limit; j += i) sieve[j] = 0;
    }
    return count;
}

double leibniz_pi(int terms) {
    double acc = 0.0;
    double sign = 1.0;
    int k;
    for (k = 0; k < terms; k++) {
        acc += sign / (double)(2 * k + 1);
        sign = -sign;
    }
    return 4.0 * acc;
}

int main(void) {
    print_s("primes(2000) = ");
    print_i(count_primes(2000));
    print_nl();
    print_s("pi ~ ");
    print_f(leibniz_pi(5000));
    print_nl();
    return 0;
}
"""


def main() -> None:
    # Native baseline: same source, the machine's own code generator.
    native = run_native(nativecc(SOURCE, opt_level=2))
    print("native output:")
    print(native.stdout_text())

    # Cross-compile to WebAssembly (+WASI) once...
    artifact = compile_source(SOURCE, opt_level=2)
    print(f"wasm module: {artifact.binary_size} bytes, "
          f"{artifact.instruction_count} instructions, "
          f"{artifact.function_count} functions\n")

    # ...and run it on each standalone runtime.
    header = (f"{'runtime':10s} {'slowdown':>9s} {'instrs x':>9s} "
              f"{'IPC':>5s} {'MRSS x':>7s} {'bpm %':>6s}")
    print(header)
    print("-" * len(header))
    for name in ALL_RUNTIME_NAMES:
        res = make_runtime(name).run(artifact.wasm_bytes)
        assert res.stdout == native.stdout, f"{name} output diverged!"
        print(f"{name:10s} "
              f"{res.seconds / native.seconds:8.2f}x "
              f"{res.counters['instructions'] / native.counters['instructions']:8.2f}x "
              f"{res.counters['ipc']:5.2f} "
              f"{res.mrss_bytes / native.mrss_bytes:6.2f}x "
              f"{res.counters['branch_miss_ratio'] * 100:6.2f}")
    print("\n(all five runtimes produced byte-identical output)")


if __name__ == "__main__":
    main()
