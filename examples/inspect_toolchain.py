#!/usr/bin/env python3
"""Look inside the toolchain: WAT disassembly, -O effects, JIT tiers.

Shows the artifacts at each stage of the pipeline the paper measures:
the Wasm module a C function compiles to at different -O levels, and the
machine code each JIT backend tier generates from the same module.
"""

from repro.compiler import compile_source
from repro.isa.program import disassemble
from repro.runtimes.jit import BACKENDS, compile_backend
from repro.wasm import decode_module, format_body

SOURCE = r"""
int dot(int *a, int *b, int n) {
    int acc = 0;
    int i;
    for (i = 0; i < n; i++) {
        acc += a[i] * b[i];
    }
    return acc;
}

int xs[8] = {1, 2, 3, 4, 5, 6, 7, 8};
int ys[8] = {8, 7, 6, 5, 4, 3, 2, 1};

int main(void) {
    print_i(dot(xs, ys, 8));
    print_nl();
    return 0;
}
"""


def wasm_of(opt: int):
    return compile_source(SOURCE, opt_level=opt)


def main() -> None:
    print("=== -O effects on the Wasm artifact ===")
    for opt in (0, 1, 2, 3):
        artifact = wasm_of(opt)
        print(f"-O{opt}: {artifact.binary_size:5d} bytes, "
              f"{artifact.instruction_count:5d} instructions "
              f"(midend: {dict((k, v) for k, v in artifact.midend_stats.items() if v)})")

    print("\n=== `dot` at -O2, as WebAssembly ===")
    artifact = wasm_of(2)
    module = decode_module(artifact.wasm_bytes)
    for func in module.functions:
        if func.name == "dot":
            print(format_body(func.body))
            break
    else:
        # names are not kept in the binary; find by shape instead
        dot = min(module.functions, key=lambda f: abs(len(f.body) - 40))
        print(format_body(dot.body))

    print("\n=== the same module through each JIT tier ===")
    for tier in ("singlepass", "cranelift", "llvm"):
        program = compile_backend(module, BACKENDS[tier])
        total = sum(len(f.code) for f in program.functions)
        print(f"{tier:11s}: {total:5d} machine ops, "
              f"{program.code_bytes:6d} code bytes")

    print("\n=== machine code of one function (cranelift tier) ===")
    program = compile_backend(module, BACKENDS["cranelift"])
    smallest = min((f for f in program.functions if len(f.code) > 8),
                   key=lambda f: len(f.code))
    print(disassemble(smallest))


if __name__ == "__main__":
    main()
