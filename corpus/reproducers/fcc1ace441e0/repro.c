unsigned int g_h = 2166136261u;
double fd0(double x, double y) {
}
int main(void) {
    print_u(g_h); print_nl();
}
